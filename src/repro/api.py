"""The one-call public API: ``repro.optimize(...)``.

Everything the library does — building the training graph, choosing the
input DAG, bootstrapping cost models through simulated pre-training,
running the OS-DPOS strategy search, activating/rolling back strategies —
sits behind one function::

    import repro
    from repro.cluster import single_server

    result = repro.optimize("lenet", single_server(2))
    print(result.strategy.placement)
    print(result.training_speed)          # samples/second
    print(result.metrics["search.candidates_evaluated"])

Pass an :class:`~repro.obs.Observability` hook to record the run and
export a Chrome-trace timeline::

    from repro.obs import Observability

    obs = Observability()
    result = repro.optimize("lenet", single_server(2), obs=obs)
    obs.export_chrome_trace("optimize.trace.json")   # open in Perfetto

Or let the flight recorder do all of it: ``run_dir=True`` (or setting
``REPRO_RECORD=1``) mints a run id, streams telemetry events to a JSONL
log, and leaves a versioned manifest plus every artifact — trace,
provenance journal, calibration report, metrics, a simulated step —
under one registry directory (see :mod:`repro.obs.runs`)::

    result = repro.optimize("lenet", single_server(2), run_dir=True)
    print(result.run_id, result.run_dir)
    # later: python -m repro.obs.runs show <run_id>
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Union

from .cluster import Topology, TopologyLike, topology_from
from .core.calculator import CalculationReport, FastTConfig
from .core.context import SearchContext
from .core.session import FastTSession
from .core.strategy import Strategy
from .graph import Graph
from .hardware import PerfModel
from .models import get_model
from .models.registry import ModelSpec
from .obs import MetricsSnapshot, Observability

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .obs.analyze import StepAnalysis, TraceDiff
    from .obs.calibration import CalibrationReport
    from .obs.provenance import OpExplanation

#: What ``optimize`` accepts as its model argument: a model-zoo name, a
#: :class:`~repro.models.registry.ModelSpec`, or a bare model-builder
#: callable (with ``global_batch=`` then required).
ModelLike = Union[str, ModelSpec, Callable]


@dataclass
class OptimizeResult:
    """Structured output of :func:`repro.optimize`.

    The interesting pieces of the full :class:`CalculationReport` are
    lifted to attributes; the report itself (rounds, timings) and the
    live session (for further simulated training via ``session.run()``)
    stay reachable.
    """

    model_name: str
    topology: Topology
    global_batch: int
    strategy: Strategy
    graph: Graph
    report: CalculationReport
    session: FastTSession
    iteration_time: float
    training_speed: float
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    #: Flight-recorder identity, set when the run was recorded
    #: (``run_dir=`` / ``REPRO_RECORD=1``); query it later with
    #: ``python -m repro.obs.runs show <run_id>``.
    run_id: Optional[str] = None
    run_dir: Optional[str] = None

    @property
    def num_devices(self) -> int:
        return len(self.topology.devices)

    @property
    def speedup_vs_initial(self) -> float:
        """Initial strategy's iteration time over the final one's."""
        initial = self.report.initial_measured_time
        if not self.iteration_time or initial == float("inf"):
            return 1.0
        return initial / self.iteration_time

    def explain(self, steps: int = 1) -> "StepAnalysis":
        """Fig. 5-style attribution of one step under this strategy.

        Re-simulates ``steps`` iterations through the live session and
        analyzes the last one: the critical path with every nanosecond
        attributed to {compute, transfer, wait, idle}, per-device
        utilization/overlap, straggler detection, and per-channel
        congestion.  ``print(result.explain().render())`` for the TTY
        report; ``.to_json()`` for the machine-readable one.
        """
        from .obs.analyze import analyze_step

        trace = self.session.run(steps)[-1]
        return analyze_step(
            trace, label=f"{self.model_name}/{self.strategy.label}"
        )

    def diff(self, other: "OptimizeResult", steps: int = 1) -> "TraceDiff":
        """Explain why this result's strategy differs from ``other``'s.

        Diffs placements, priorities, and split decisions, re-simulates
        both strategies, and attributes the makespan delta to specific
        moved/split ops (``render()`` / ``to_json()`` on the returned
        :class:`~repro.obs.analyze.TraceDiff`).  ``self`` is the A side,
        ``other`` the B side.
        """
        from .obs.analyze import diff_results

        return diff_results(self, other, steps=steps)

    def explain_placement(self, op_name: str) -> "OpExplanation":
        """Why did this (sub-)op land where it did?

        Requires the run to have been made with
        ``obs=Observability(provenance=True)``; reconstructs, from the
        recorded journal, the chosen device with every alternative the
        scheduler scored, and — for split ops — the accept/reject/prune
        verdict chain that produced them.
        ``print(result.explain_placement("op").render())`` for the TTY
        report; ``.to_json()`` for the machine-readable one.
        """
        from .obs.provenance import ProvenanceError

        provenance = getattr(self.session.obs, "provenance", None)
        journal = getattr(provenance, "journal", None)
        if journal is None:
            raise ProvenanceError(
                "no provenance journal was recorded; rerun with "
                "obs=Observability(provenance=True)"
            )
        return journal.explain(op_name, placement=self.strategy.placement)

    @property
    def calibration(self) -> Optional["CalibrationReport"]:
        """Cost-model calibration report (provenance-enabled runs only)."""
        return self.report.calibration

    def summary(self) -> str:
        """A short human-readable account of the optimization."""
        from .obs.report import render_search_counters

        lines = [
            f"model={self.model_name} devices={self.num_devices} "
            f"batch={self.global_batch}",
            f"strategy={self.strategy.label} "
            f"splits={len(self.strategy.split_list)}",
            f"iteration_time={self.iteration_time:.6f}s "
            f"speed={self.training_speed:.1f} samples/s "
            f"speedup={self.speedup_vs_initial:.2f}x",
            render_search_counters(self.report.metrics)
            + f" over {len(self.report.rounds)} round(s)",
        ]
        calibration = self.report.calibration
        if calibration is not None and calibration.entries:
            lines.append(
                "calibration: "
                f"max |rel| residual {calibration.max_abs_relative * 100:.1f}% "
                f"over {len(calibration.entries)} prediction(s)"
            )
        return "\n".join(lines)


def optimize(
    model_or_name: ModelLike,
    topology: TopologyLike,
    *,
    global_batch: Optional[int] = None,
    config: Optional[FastTConfig] = None,
    obs: Optional[Observability] = None,
    perf_model: Optional[PerfModel] = None,
    model_name: Optional[str] = None,
    run_dir: Union[None, bool, str] = None,
    progress: bool = False,
    context: Optional[SearchContext] = None,
) -> OptimizeResult:
    """Find and evaluate a deployment strategy for one training job.

    Args:
        model_or_name: A model-zoo name (``"lenet"``, ``"vgg19"``, …), a
            :class:`ModelSpec`, or a model-builder callable.
        topology: The cluster to deploy onto — a built
            :class:`Topology` (e.g. ``single_server(4)``), a preset name
            (``"pcie:4"``, ``"dgx:8"``, ``"servers:4x2"``), a
            :class:`~repro.cluster.ClusterSpec`, or a dict/JSON cluster
            spec (see :func:`repro.cluster.topology_from`).
        global_batch: Per-iteration batch size; defaults to the model
            spec's, and is required for bare builder callables.
        config: Workflow tunables (:class:`FastTConfig`); search knobs
            live in ``config.search``.
        obs: Optional :class:`~repro.obs.Observability` hook recording
            spans and metrics across every layer of the run.
        perf_model: Override the simulated hardware model (testing).
        model_name: Display name when passing a bare builder.
        run_dir: Record this run in the flight-recorder registry
            (:mod:`repro.obs.runs`).  ``True`` records under the default
            root (``$REPRO_RUNS_DIR`` or ``~/.repro/runs``); a string
            records under that root instead; ``False`` disables even the
            ``REPRO_RECORD=1`` environment default; ``None`` (default)
            defers to ``REPRO_RECORD``.
        progress: Render live search progress on stderr (the same
            renderer behind the benchmarks' ``--progress`` flag).
        context: Explicit per-request :class:`~repro.core.SearchContext`
            (multi-tenant callers, e.g. :mod:`repro.serve`).  The run
            then uses the context's cost models, perf-model RNG, obs
            sinks, and optional warm-start seed; ``config`` and
            ``perf_model`` default to the context's when omitted.

    Returns:
        An :class:`OptimizeResult` with the surviving strategy, the
        measured iteration time / training speed, the run's metrics, and
        — for recorded runs — ``run_id``/``run_dir``.
    """
    topology = topology_from(topology)
    if context is not None:
        if perf_model is None:
            perf_model = context.perf_model
        if config is None:
            config = context.config
        if obs is None and context.obs.enabled:
            obs = context.obs
    if isinstance(model_or_name, str):
        spec = get_model(model_or_name)
        builder, name = spec.builder, spec.name
        batch = global_batch if global_batch is not None else spec.global_batch
    elif isinstance(model_or_name, ModelSpec):
        spec = model_or_name
        builder, name = spec.builder, spec.name
        batch = global_batch if global_batch is not None else spec.global_batch
    elif callable(model_or_name):
        builder = model_or_name
        name = model_name or getattr(model_or_name, "__name__", "model")
        if global_batch is None:
            raise TypeError(
                "optimize() requires global_batch= when given a bare "
                "model-builder callable"
            )
        batch = global_batch
    else:
        raise TypeError(
            "model_or_name must be a model-zoo name, a ModelSpec, or a "
            f"model-builder callable, not {type(model_or_name).__name__}"
        )
    if model_name is not None:
        name = model_name

    if run_dir is None:
        record = os.environ.get("REPRO_RECORD", "") == "1"
        registry_root = None
    else:
        record = bool(run_dir)
        registry_root = run_dir if isinstance(run_dir, str) else None

    recorder = None
    renderer = None
    if record or progress:
        if obs is None:
            obs = Observability(events=True, provenance=record)
        elif not obs.enabled:
            raise ValueError(
                "run recording/progress needs an enabled Observability; "
                "got a disabled obs= hook"
            )
        elif not obs.events.enabled:
            from .obs import EventBus

            obs.events = EventBus()
    if record:
        from .obs.runs import RunRegistry

        recorder = RunRegistry(registry_root).create()
        recorder.attach(obs)
    if progress:
        from .obs.progress import ProgressRenderer

        renderer = ProgressRenderer()
        obs.events.subscribe(renderer)
    if obs is not None and obs.events.enabled:
        obs.events.emit(
            "run.start",
            run_id=recorder.run_id if recorder else None,
            model=name,
            batch=batch,
            devices=len(topology.devices),
        )

    try:
        session = FastTSession(
            builder,
            topology,
            global_batch=batch,
            perf_model=perf_model,
            config=config,
            model_name=name,
            obs=obs,
        )
        report = session.optimize(context=context)
    except BaseException as exc:
        if recorder is not None:
            recorder.finish(
                status="failed",
                model=name,
                global_batch=batch,
                devices=len(topology.devices),
                error=f"{type(exc).__name__}: {exc}",
            )
        if renderer is not None:
            obs.events.unsubscribe(renderer)
            renderer.close()
        raise

    iteration_time = report.measured_time
    speed = batch / iteration_time if iteration_time else float("inf")
    if obs is not None and obs.enabled:
        metrics = obs.snapshot()
    else:
        metrics = MetricsSnapshot(report.metrics)

    run_id_out: Optional[str] = None
    run_dir_out: Optional[str] = None
    if recorder is not None:
        run_id_out, run_dir_out = _record_run(
            recorder, obs, session, report, name, batch, topology,
            iteration_time, speed, metrics,
        )
    elif obs is not None and obs.events.enabled:
        obs.events.emit(
            "run.finish", status="completed", makespan=iteration_time
        )
    if renderer is not None:
        obs.events.unsubscribe(renderer)
        renderer.close()

    return OptimizeResult(
        model_name=name,
        topology=topology,
        global_batch=batch,
        strategy=report.strategy,
        graph=report.graph,
        report=report,
        session=session,
        iteration_time=iteration_time,
        training_speed=speed,
        metrics=metrics,
        run_id=run_id_out,
        run_dir=run_dir_out,
    )


def _record_run(
    recorder,
    obs: Observability,
    session: FastTSession,
    report: CalculationReport,
    name: str,
    batch: int,
    topology: Topology,
    iteration_time: float,
    speed: float,
    metrics: MetricsSnapshot,
) -> tuple:
    """Write a recorded run's artifacts and manifest; returns (id, dir).

    Everything lands inside the run directory: the Chrome trace, the
    provenance journal, the calibration report, the metrics snapshot,
    and one simulated step under the surviving strategy (what
    ``python -m repro.obs.runs diff`` re-attributes).
    """
    from .obs.runs import config_fingerprints

    step_trace = session.run(1)[-1]
    recorder.add_artifact(
        "step", step_trace.save(recorder.path("step.json"))
    )
    recorder.add_artifact(
        "trace", obs.export_chrome_trace(recorder.path("trace.json"))
    )
    recorder.add_artifact(
        "provenance",
        obs.export_provenance(recorder.path("provenance.json")),
    )
    if report.calibration is not None:
        recorder.add_artifact(
            "calibration",
            report.calibration.save(recorder.path("calibration.json")),
        )
    recorder.add_artifact(
        "metrics",
        obs.export_metrics_json(
            recorder.path("metrics.json"), run_id=recorder.run_id
        ),
    )
    obs.events.emit(
        "run.finish",
        run_id=recorder.run_id,
        status="completed",
        makespan=iteration_time,
    )
    recorder.finish(
        status="completed",
        model=name,
        global_batch=batch,
        devices=len(topology.devices),
        fingerprints=config_fingerprints(
            session.input_graph, topology, session.config
        ),
        makespan=iteration_time,
        training_speed=speed,
        strategy_label=report.strategy.label,
        splits=len(report.strategy.split_list),
        metrics={
            k: v for k, v in metrics.items()
            if isinstance(v, (int, float)) and k.startswith("search.")
        },
    )
    return recorder.run_id, recorder.run_dir
