"""Discrete-event multi-GPU training-step simulator (the testbed stand-in)."""

from .memory import MemoryTracker, SimulationOOMError
from .reference import ReferenceSimulator
from .runner import FIFO, PRIORITY, ExecutionSimulator, SimulationError

__all__ = [
    "ExecutionSimulator",
    "FIFO",
    "MemoryTracker",
    "PRIORITY",
    "ReferenceSimulator",
    "SimulationError",
    "SimulationOOMError",
]
