"""Discrete-event simulation of one training iteration on a GPU cluster.

This is the reproduction's *testbed*: given a training graph, a
placement, and (optionally) an execution order, it plays out the step —
per-device serial kernel execution, per-channel serialized tensor
transfers, compute/communication overlap, ref-counted memory — and
returns a :class:`~repro.profiling.trace.StepTrace`.

Two scheduling policies mirror the paper's Fig. 2 comparison:

* ``"fifo"`` — TensorFlow's default: the executor pops the ready queue
  in arrival order.
* ``"priority"`` — FastT's order enforcement: ready ops run in the order
  the strategy calculator computed (Sec. 6.1, Order Enforcement).

The executor is organized around a single global event heap: every
op/transfer completion is one heap entry, and dispatch decisions are
made inline when an event retires — no per-device or per-channel
polling.  The per-event work is kept off the Python slow path by a
:class:`_GraphPlan` built once per graph revision: kernel durations are
numpy-batched per device up front (bit-identical to the scalar roofline;
see :meth:`PerfModel.batch_base_op_times`), and route/link/transfer base
costs are memoized per device pair on the simulator, so a 100k-op graph
pays array indexing instead of per-dispatch cost-model recomputation.
The frozen per-dispatch implementation lives in
:mod:`repro.sim.reference`; the equivalence suite pins this runner
bit-exact against it (same event times, same jitter-stream draws, same
trace records).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..cluster import LinkSpec, Topology
from ..graph import Graph, Operation
from ..hardware import PerfModel
from ..obs import Observability, get_obs
from ..profiling.trace import OpRecord, StepTrace, TransferRecord
from .memory import MemoryTracker, SimulationOOMError

FIFO = "fifo"
PRIORITY = "priority"
_INF = float("inf")

#: Methods a perf model must expose for the batched fast path.  Test
#: doubles that only implement ``op_time``/``transfer_time``/``link_time``
#: fall back to the reference per-dispatch calls (still heap-driven).
_FAST_PERF_METHODS = (
    "batch_op_cost_inputs",
    "batch_base_op_times",
    "jittered",
    "base_transfer_time",
    "base_link_time",
)


class SimulationError(RuntimeError):
    """Raised on inconsistent simulator inputs (bad placement, deadlock)."""


@dataclass
class _Transfer:
    tensor_name: str
    src: str
    dst: str
    num_bytes: int
    consumers: int
    queued_at: float = 0.0
    producer: str = ""
    #: The contended channels the route crosses, in order; the transfer
    #: queues on each in sequence (store-and-forward).
    hops: Tuple[LinkSpec, ...] = ()
    hop: int = 0


class _GraphPlan:
    """Per-graph-revision execution plan shared across simulated steps.

    Snapshots everything about the graph the hot loop would otherwise
    recompute per step or per dispatch: op order, per-op distinct input
    tensors (first-occurrence order — it decides ``deps_remaining`` and
    consumer grouping), and — when the perf model supports batching —
    the device-independent cost arrays plus lazily materialized
    per-device base-duration vectors.  Keyed by :attr:`Graph.version`,
    so any structural mutation (including transaction rollbacks)
    invalidates the plan.
    """

    def __init__(self, graph: Graph, perf: Optional[PerfModel]) -> None:
        self.version = graph.version
        self.ops: List[Operation] = graph.ops
        self.op_index: Dict[str, int] = {
            op.name: i for i, op in enumerate(self.ops)
        }
        self.distinct_inputs: List[List] = []
        for op in self.ops:
            distinct = {t.name: t for t in op.inputs}
            self.distinct_inputs.append(list(distinct.values()))
        self._cost_inputs = (
            perf.batch_op_cost_inputs(self.ops) if perf is not None else None
        )
        self._base_times: Dict[str, np.ndarray] = {}

    def base_times(self, perf: PerfModel, device) -> np.ndarray:
        """Noise-free durations of every op on ``device`` (memoized)."""
        arr = self._base_times.get(device.name)
        if arr is None:
            arr = perf.batch_base_op_times(*self._cost_inputs, device)
            self._base_times[device.name] = arr
        return arr


class ExecutionSimulator:
    """Simulates single training iterations of a placed graph."""

    def __init__(
        self,
        graph: Graph,
        topology: Topology,
        perf_model: PerfModel,
        enforce_memory: bool = True,
        obs: Optional[Observability] = None,
    ) -> None:
        graph.validate()
        self.graph = graph
        self.topology = topology
        self.perf = perf_model
        self.enforce_memory = enforce_memory
        self.obs = get_obs(obs)
        self._fast = all(hasattr(perf_model, m) for m in _FAST_PERF_METHODS)
        self._plan: Optional[_GraphPlan] = None
        # Topology is immutable, so routed-hop resolution and noise-free
        # transfer/link base costs are memoized for the simulator's
        # lifetime (shared by every step and graph revision).
        self._route_hops: Dict[Tuple[str, str], Tuple[LinkSpec, ...]] = {}
        self._transfer_base: Dict[Tuple[str, str, int], float] = {}
        self._link_base: Dict[Tuple[LinkSpec, int], float] = {}

    # ------------------------------------------------------------------
    def plan(self) -> _GraphPlan:
        """The execution plan for the graph's current revision."""
        plan = self._plan
        if plan is None or plan.version != self.graph.version:
            plan = _GraphPlan(self.graph, self.perf if self._fast else None)
            self._plan = plan
        return plan

    def route_hops(self, src: str, dst: str) -> Tuple[LinkSpec, ...]:
        """The contended channels between two devices (per-pair memo).

        All-wire routes (no contended channel) still produce one hop —
        the effective link — so the transfer is traced and pays its
        route latency; infinite bandwidth makes the queueing harmless.
        """
        key = (src, dst)
        hops = self._route_hops.get(key)
        if hops is None:
            route = self.topology.route(src, dst)
            hops = route.channels or (self.topology.link(src, dst),)
            self._route_hops[key] = hops
        return hops

    def _transfer_base_time(self, src: str, dst: str, num_bytes: int) -> float:
        key = (src, dst, num_bytes)
        base = self._transfer_base.get(key)
        if base is None:
            base = self.perf.base_transfer_time(src, dst, num_bytes)
            self._transfer_base[key] = base
        return base

    def _link_base_time(self, link: LinkSpec, num_bytes: int) -> float:
        key = (link, num_bytes)
        base = self._link_base.get(key)
        if base is None:
            base = self.perf.base_link_time(link, num_bytes)
            self._link_base[key] = base
        return base

    # ------------------------------------------------------------------
    def run_step(
        self,
        placement: Mapping[str, str],
        order: Optional[Sequence[str]] = None,
        policy: str = FIFO,
    ) -> StepTrace:
        """Simulate one iteration and return its trace.

        Args:
            placement: op name -> device name, complete over the graph.
            order: FastT's execution order list; required when ``policy``
                is ``"priority"`` (ops absent from the list run last).
            policy: ``"fifo"`` or ``"priority"``.

        Raises:
            SimulationError: incomplete placement or scheduling deadlock.
            SimulationOOMError: a device ran out of memory (when
                ``enforce_memory``).
        """
        if policy not in (FIFO, PRIORITY):
            raise SimulationError(f"unknown scheduling policy {policy!r}")
        obs = self.obs
        with obs.tracer.span(
            "sim.step", cat="sim", args={"policy": policy, "graph": self.graph.name}
        ):
            state = _StepState(self, placement, order, policy)
            trace = state.run()
        if obs.enabled:
            metrics = obs.metrics
            metrics.counter("sim.steps").inc()
            metrics.counter("sim.op_executions").inc(len(trace.op_records))
            metrics.counter("sim.transfers").inc(len(trace.transfer_records))
            metrics.timer("sim.simulated").add(trace.makespan)
            metrics.timer("sim.queue_wait").add(trace.total_queue_wait)
            metrics.gauge("sim.last_makespan").set(trace.makespan)
        return trace


class _StepState:
    """All mutable state of one simulated step."""

    def __init__(
        self,
        sim: ExecutionSimulator,
        placement: Mapping[str, str],
        order: Optional[Sequence[str]],
        policy: str,
    ) -> None:
        self.sim = sim
        self.graph = sim.graph
        self.policy = policy
        self.plan = sim.plan()
        plan = self.plan
        self.device_names = sim.topology.device_names
        dev_set = set(self.device_names)
        self.placement: Dict[str, str] = {}
        for op in plan.ops:
            dev = placement.get(op.name)
            if dev is None:
                raise SimulationError(f"placement misses op {op.name!r}")
            if dev not in dev_set:
                raise SimulationError(
                    f"op {op.name!r} placed on unknown device {dev!r}"
                )
            self.placement[op.name] = dev

        self.priority: Dict[str, float] = {}
        if order is not None:
            self.priority = {name: i for i, name in enumerate(order)}
        elif policy == PRIORITY:
            raise SimulationError("priority policy requires an order list")

        # Per-tensor consumer ops grouped by consuming device.
        self.consumers_by_device: Dict[str, Dict[str, List[Operation]]] = {}
        self.deps_remaining: Dict[str, int] = {}
        for i, op in enumerate(plan.ops):
            distinct = plan.distinct_inputs[i]
            self.deps_remaining[op.name] = len(distinct)
            dev = self.placement[op.name]
            for t in distinct:
                per_dev = self.consumers_by_device.setdefault(t.name, {})
                per_dev.setdefault(dev, []).append(op)

        # Per-device noise-free kernel durations; None on the scalar
        # fallback path for perf models without batch support.
        self.base_times: Optional[Dict[str, np.ndarray]] = None
        if sim._fast:
            topo = sim.topology
            self.base_times = {
                d: plan.base_times(sim.perf, topo.device(d))
                for d in self.device_names
            }

        self.available: Set[Tuple[str, str]] = set()  # (tensor, device)
        self.memory = MemoryTracker(
            capacities={d.name: d.memory_bytes for d in sim.topology.devices},
            enforce=sim.enforce_memory,
        )
        self.ready: Dict[str, List[Tuple[float, float, int, Operation]]] = {
            d: [] for d in self.device_names
        }
        self.ready_time: Dict[str, float] = {}
        # op name -> the input event whose arrival made it ready
        # ("op:<name>" or "transfer:<tensor>:<src>-><dst>"), recorded so
        # critical-path extraction is exact rather than inferred.
        self.blocked_by: Dict[str, Optional[str]] = {}
        self.device_busy: Dict[str, bool] = {d: False for d in self.device_names}
        self.channel_busy: Dict[str, bool] = {}
        self.channel_queue: Dict[str, Deque[_Transfer]] = {}
        self.events: List[Tuple[float, int, str, object]] = []
        self.seq = itertools.count()
        self.trace = StepTrace()
        self.completed = 0

    # ------------------------------------------------------------------
    def run(self) -> StepTrace:
        for op in self.plan.ops:
            if self.deps_remaining[op.name] == 0:
                self._enqueue_ready(op, 0.0)
        for dev in self.device_names:
            self._dispatch_device(dev, 0.0)

        # Telemetry: stride-sampled heap progress, computed only when a
        # live event bus is attached so the hot loop stays untouched.
        telemetry = self.sim.obs.events
        num_ops = self.graph.num_ops
        progress_stride = (
            max(1, num_ops // 16) if telemetry.enabled else 0
        )
        last_reported = 0

        makespan = 0.0
        while self.events:
            time, _, kind, payload = heapq.heappop(self.events)
            makespan = max(makespan, time)
            if kind == "op_finish":
                self._on_op_finish(payload, time)  # type: ignore[arg-type]
                if (
                    progress_stride
                    and self.completed - last_reported >= progress_stride
                ):
                    last_reported = self.completed
                    telemetry.emit(
                        "sim.progress",
                        graph=self.graph.name,
                        completed=self.completed,
                        total=num_ops,
                        sim_time=time,
                    )
            else:
                self._on_transfer_finish(payload, time)  # type: ignore[arg-type]

        if progress_stride:
            telemetry.emit(
                "sim.step.finish",
                graph=self.graph.name,
                makespan=makespan,
                ops=self.completed,
            )
        if self.completed != self.graph.num_ops:
            stuck = [
                name for name, n in self.deps_remaining.items() if n > 0
            ][:10]
            raise SimulationError(
                f"deadlock: {self.graph.num_ops - self.completed} ops never "
                f"ran (e.g. {stuck})"
            )
        self.trace.makespan = makespan
        self.trace.peak_memory = dict(self.memory.peak)
        self.trace.op_records.sort(key=lambda r: r.start)
        self.trace.transfer_records.sort(key=lambda r: r.start)
        return self.trace

    # ------------------------------------------------------------------
    def _enqueue_ready(
        self, op: Operation, time: float, cause: Optional[str] = None
    ) -> None:
        dev = self.placement[op.name]
        self.ready_time[op.name] = time
        self.blocked_by[op.name] = cause
        if self.policy == PRIORITY:
            key = self.priority.get(op.name, _INF)
            heapq.heappush(self.ready[dev], (key, time, next(self.seq), op))
        else:
            heapq.heappush(self.ready[dev], (time, 0.0, next(self.seq), op))

    def _dispatch_device(self, dev: str, time: float) -> None:
        if self.device_busy[dev] or not self.ready[dev]:
            return
        _, _, _, op = heapq.heappop(self.ready[dev])
        self.device_busy[dev] = True
        self._allocate_outputs(op, dev)
        if self.base_times is not None:
            # Same value, same jitter-stream consumption as
            # perf.op_time — only the base lookup is precomputed.
            base = float(self.base_times[dev][self.plan.op_index[op.name]])
            duration = self.sim.perf.jittered(base)
        else:
            duration = self.sim.perf.op_time(op, self.sim.topology.device(dev))
        end = time + duration
        self.trace.op_records.append(
            OpRecord(
                op.name, op.op_type, dev, time, end,
                ready=self.ready_time.get(op.name, time),
                blocked_by=self.blocked_by.get(op.name),
            )
        )
        heapq.heappush(self.events, (end, next(self.seq), "op_finish", op))

    def _allocate_outputs(self, op: Operation, dev: str) -> None:
        persistent = op.op_type == "Variable"
        for t in op.outputs:
            per_dev = self.consumers_by_device.get(t.name, {})
            local = len(per_dev.get(dev, ()))
            remote_devices = [d for d in per_dev if d != dev]
            self.memory.allocate(
                t.name,
                dev,
                t.size_bytes,
                consumers=local + len(remote_devices),
                persistent=persistent,
            )

    # ------------------------------------------------------------------
    def _on_op_finish(self, op: Operation, time: float) -> None:
        dev = self.placement[op.name]
        self.device_busy[dev] = False
        self.completed += 1
        # Release this op's holds on its (local copies of) inputs.
        for t in self.plan.distinct_inputs[self.plan.op_index[op.name]]:
            self.memory.release(t.name, dev)
        # Outputs become available locally and trigger remote transfers.
        for t in op.outputs:
            self._mark_available(t.name, dev, time, cause=f"op:{op.name}")
            per_dev = self.consumers_by_device.get(t.name, {})
            for dst, ops in per_dev.items():
                if dst == dev:
                    continue
                self._enqueue_transfer(
                    _Transfer(
                        t.name, dev, dst, t.size_bytes, len(ops),
                        queued_at=time, producer=op.name,
                    ),
                    time,
                )
        self._dispatch_device(dev, time)

    def _mark_available(
        self, tensor_name: str, dev: str, time: float, cause: Optional[str] = None
    ) -> None:
        key = (tensor_name, dev)
        if key in self.available:
            return
        self.available.add(key)
        for op in self.consumers_by_device.get(tensor_name, {}).get(dev, ()):
            self.deps_remaining[op.name] -= 1
            if self.deps_remaining[op.name] == 0:
                self._enqueue_ready(op, time, cause=cause)
        self._dispatch_device(dev, time)

    # ------------------------------------------------------------------
    def _enqueue_transfer(self, transfer: _Transfer, time: float) -> None:
        transfer.hops = self.sim.route_hops(transfer.src, transfer.dst)
        transfer.hop = 0
        self._enqueue_hop(transfer, time)

    def _enqueue_hop(self, transfer: _Transfer, time: float) -> None:
        channel = transfer.hops[transfer.hop].shared_channel
        if self.channel_busy.get(channel):
            self.channel_queue.setdefault(channel, deque()).append(transfer)
        else:
            self._start_transfer(channel, transfer, time)

    def _start_transfer(self, channel: str, transfer: _Transfer, time: float) -> None:
        self.channel_busy[channel] = True
        if transfer.hop == 0:
            # The destination copy is allocated when the transfer begins,
            # as receive buffers are pinned up front.
            self.memory.allocate(
                transfer.tensor_name,
                transfer.dst,
                transfer.num_bytes,
                consumers=transfer.consumers,
            )
        sim = self.sim
        if sim._fast:
            if len(transfer.hops) == 1:
                base = sim._transfer_base_time(
                    transfer.src, transfer.dst, transfer.num_bytes
                )
            else:
                base = sim._link_base_time(
                    transfer.hops[transfer.hop], transfer.num_bytes
                )
            duration = sim.perf.jittered(base) if base else 0.0
        elif len(transfer.hops) == 1:
            duration = sim.perf.transfer_time(
                transfer.src, transfer.dst, transfer.num_bytes
            )
        else:
            duration = sim.perf.link_time(
                transfer.hops[transfer.hop], transfer.num_bytes
            )
        end = time + duration
        # One record per hop; all hops carry the endpoint devices, so
        # per-device accounting sees one logical transfer while each
        # channel row shows its own span.
        self.trace.transfer_records.append(
            TransferRecord(
                transfer.tensor_name,
                transfer.src,
                transfer.dst,
                transfer.num_bytes,
                time,
                end,
                channel=channel,
                queued_at=transfer.queued_at,
                producer=transfer.producer,
            )
        )
        heapq.heappush(
            self.events, (end, next(self.seq), "transfer_finish", (channel, transfer))
        )

    def _on_transfer_finish(self, payload: Tuple[str, _Transfer], time: float) -> None:
        channel, transfer = payload
        last_hop = transfer.hop + 1 >= len(transfer.hops)
        if last_hop:
            # The source copy drops the reference held for this transfer.
            self.memory.release(transfer.tensor_name, transfer.src)
            self._mark_available(
                transfer.tensor_name,
                transfer.dst,
                time,
                cause=(
                    f"transfer:{transfer.tensor_name}|"
                    f"{transfer.src}|{transfer.dst}"
                ),
            )
        queue = self.channel_queue.get(channel)
        if queue:
            self._start_transfer(channel, queue.popleft(), time)
        else:
            self.channel_busy[channel] = False
        if not last_hop:
            transfer.hop += 1
            transfer.queued_at = time
            self._enqueue_hop(transfer, time)
