"""Dynamic device-memory tracking for the execution simulator.

Tensors are allocated on a device when their producing op starts there
(or when a transfer delivers a remote copy) and freed once every
consumer on that device has finished.  Parameters (``Variable`` outputs)
are persistent for the whole step.  This liveness model is what makes
the paper's Table 3 reproducible: activations held for the backward pass
dominate peak memory and scale with batch size, so BERT-large at batch
32 fits one 16 GB GPU only when its graph is spread over two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set, Tuple


class SimulationOOMError(RuntimeError):
    """Raised when a device exceeds its memory capacity during a step."""

    def __init__(self, device: str, needed: int, capacity: int) -> None:
        super().__init__(
            f"device {device} out of memory: needs {needed} bytes, "
            f"capacity {capacity} bytes"
        )
        self.device = device
        self.needed = needed
        self.capacity = capacity


@dataclass
class MemoryTracker:
    """Ref-counted per-device allocation accounting.

    Attributes:
        capacities: Device name -> capacity in bytes.
        enforce: When True, exceeding capacity raises
            :class:`SimulationOOMError`; when False usage is only recorded
            (useful for what-if analyses).
    """

    capacities: Dict[str, int]
    enforce: bool = True
    usage: Dict[str, int] = field(default_factory=dict)
    peak: Dict[str, int] = field(default_factory=dict)
    _live: Dict[Tuple[str, str], int] = field(default_factory=dict)
    _refs: Dict[Tuple[str, str], int] = field(default_factory=dict)
    _persistent: Set[Tuple[str, str]] = field(default_factory=set)

    def __post_init__(self) -> None:
        for dev in self.capacities:
            self.usage.setdefault(dev, 0)
            self.peak.setdefault(dev, 0)

    def allocate(
        self,
        tensor_name: str,
        device: str,
        num_bytes: int,
        consumers: int,
        persistent: bool = False,
    ) -> None:
        """Allocate a tensor copy on ``device`` with ``consumers`` refs."""
        key = (tensor_name, device)
        if key in self._live:
            # A second allocation of the same copy only adds references.
            self._refs[key] += consumers
            return
        self._live[key] = num_bytes
        self._refs[key] = consumers
        if persistent:
            self._persistent.add(key)
        self.usage[device] = self.usage.get(device, 0) + num_bytes
        if self.usage[device] > self.peak.get(device, 0):
            self.peak[device] = self.usage[device]
        capacity = self.capacities.get(device)
        if self.enforce and capacity is not None and self.usage[device] > capacity:
            raise SimulationOOMError(device, self.usage[device], capacity)

    def release(self, tensor_name: str, device: str) -> None:
        """Drop one consumer reference; free the copy at zero references."""
        key = (tensor_name, device)
        if key not in self._live:
            return
        self._refs[key] -= 1
        if self._refs[key] <= 0 and key not in self._persistent:
            self.usage[device] -= self._live[key]
            del self._live[key]
            del self._refs[key]

    def live_bytes(self, device: str) -> int:
        return self.usage.get(device, 0)
