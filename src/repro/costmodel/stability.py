"""Cost-model stability test ending the pre-training stage (Sec. 4).

The paper finishes bootstrapping "when the cost models become stable
(the average time of the same (sub-)operation(s) on the same device(s)
does not vary much)".  We compare successive snapshots of the
computation cost model and report the largest relative change over keys
present in both.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - avoid the costmodel <-> obs cycle
    from ..obs import MetricsRegistry

Snapshot = Dict[Tuple[str, str], float]


class StabilityMonitor:
    """Tracks snapshot-to-snapshot drift of a cost model.

    ``metrics`` (any :class:`~repro.obs.MetricsRegistry`-shaped object,
    including the null registry) mirrors the monitor's signals into the
    run's metrics snapshot under ``costmodel.stability.*``: the update
    count, the last max relative drift, and a 0/1 stable gauge.
    """

    def __init__(
        self,
        tolerance: float = 0.05,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self.tolerance = tolerance
        self._previous: Optional[Snapshot] = None
        self.last_drift: Optional[float] = None
        self._metrics = metrics

    def update(self, snapshot: Snapshot) -> bool:
        """Feed the latest snapshot; True once the model counts as stable.

        Stability requires a previous snapshot covering the same keys and
        a maximum relative change below ``tolerance``.
        """
        stable = self._update(snapshot)
        if self._metrics is not None:
            self._metrics.counter("costmodel.stability.updates").inc()
            self._metrics.gauge("costmodel.stability.stable").set(
                1.0 if stable else 0.0
            )
            if self.last_drift is not None:
                self._metrics.gauge("costmodel.stability.max_drift").set(
                    self.last_drift
                )
        return stable

    def _update(self, snapshot: Snapshot) -> bool:
        previous, self._previous = self._previous, dict(snapshot)
        if previous is None or not snapshot:
            self.last_drift = None
            return False
        if set(snapshot) - set(previous):
            # New (op, device) keys appeared: still exploring.
            self.last_drift = None
            return False
        drift = 0.0
        for key, value in snapshot.items():
            old = previous[key]
            denominator = max(abs(old), 1e-12)
            drift = max(drift, abs(value - old) / denominator)
        self.last_drift = drift
        return drift <= self.tolerance
