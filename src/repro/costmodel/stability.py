"""Cost-model stability test ending the pre-training stage (Sec. 4).

The paper finishes bootstrapping "when the cost models become stable
(the average time of the same (sub-)operation(s) on the same device(s)
does not vary much)".  We compare successive snapshots of the
computation cost model and report the largest relative change over keys
present in both.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

Snapshot = Dict[Tuple[str, str], float]


class StabilityMonitor:
    """Tracks snapshot-to-snapshot drift of a cost model."""

    def __init__(self, tolerance: float = 0.05) -> None:
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self.tolerance = tolerance
        self._previous: Optional[Snapshot] = None
        self.last_drift: Optional[float] = None

    def update(self, snapshot: Snapshot) -> bool:
        """Feed the latest snapshot; True once the model counts as stable.

        Stability requires a previous snapshot covering the same keys and
        a maximum relative change below ``tolerance``.
        """
        previous, self._previous = self._previous, dict(snapshot)
        if previous is None or not snapshot:
            self.last_drift = None
            return False
        if set(snapshot) - set(previous):
            # New (op, device) keys appeared: still exploring.
            self.last_drift = None
            return False
        drift = 0.0
        for key, value in snapshot.items():
            old = previous[key]
            denominator = max(abs(old), 1e-12)
            drift = max(drift, abs(value - old) / denominator)
        self.last_drift = drift
        return drift <= self.tolerance
