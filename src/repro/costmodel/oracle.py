"""Oracle cost models backed directly by the ground-truth hardware model.

FastT never gets these on a real testbed — it must *learn* its costs
from profiling.  The oracles exist for testing (deterministic DPOS
inputs) and for the cost-model ablation benchmark, which quantifies how
much strategy quality is lost to profiling error by comparing learned
models against perfect knowledge.

Both classes are duck-typed to the interfaces :class:`~repro.core.dpos.DPOS`
consumes (``time``/``max_time``).
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ..hardware import PerfModel
from ..graph import Operation


class OracleComputationModel:
    """(op, device) -> exact noise-free execution time."""

    def __init__(self, perf_model: PerfModel) -> None:
        self.perf = perf_model
        self._devices = {d.name: d for d in perf_model.topology.devices}

    def time(self, op: Operation, device: str) -> float:
        return self.perf.base_op_time(op, self._devices[device])

    def max_time(self, op: Operation, devices: Iterable[str]) -> float:
        return max((self.time(op, d) for d in devices), default=0.0)


class OracleCommunicationModel:
    """(src, dst, bytes) -> exact uncontended transfer time."""

    def __init__(self, perf_model: PerfModel) -> None:
        self.perf = perf_model

    def time(self, src: str, dst: str, num_bytes: int) -> float:
        return self.perf.base_transfer_time(src, dst, num_bytes)

    def max_time(self, num_bytes: int, pairs: Iterable[Tuple[str, str]]) -> float:
        return max(
            (self.time(src, dst, num_bytes) for src, dst in pairs), default=0.0
        )
