"""FastT's computation cost model (Sec. 4, Cost Models).

Keyed by ``(operation name, device)``, exactly as in the paper, and fed
only from profiled step traces.  Three lookup tiers:

1. a direct profiled average for the key;
2. for sub-operations created by Alg. 2 splits, the parent operation's
   profiled time scaled by the sub-op's work fraction (the estimate the
   strategy calculator needs to evaluate a split *before* it has ever
   run);
3. a per-device bandwidth proxy fitted over observed memory-bound ops,
   used for the split/concat glue nodes a rewrite introduces;
4. otherwise ``0.0`` — the paper's "set the cost to 0 so the algorithm
   prefers to explore the placement" rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..graph import Operation

#: Op types whose runtime is essentially memory traffic; they feed and
#: use the bandwidth proxy.
BANDWIDTH_BOUND_TYPES = frozenset(
    {
        "SplitN",
        "Concat",
        "Identity",
        "Relu",
        "ReluGrad",
        "Add",
        "AddN",
        "Mul",
        "BiasAdd",
        "BiasAddGrad",
        "Reshape",
        "Transpose",
        "Dropout",
        "DropoutGrad",
    }
)


@dataclass
class _RunningStat:
    count: int = 0
    mean: float = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.mean += (value - self.mean) / self.count


@dataclass
class _BandwidthProxy:
    """Per-device seconds-per-byte estimate from memory-bound kernels."""

    total_bytes: float = 0.0
    total_seconds: float = 0.0

    def add(self, num_bytes: int, seconds: float) -> None:
        self.total_bytes += num_bytes
        self.total_seconds += seconds

    def estimate(self, num_bytes: int) -> Optional[float]:
        if self.total_bytes <= 0:
            return None
        return self.total_seconds / self.total_bytes * num_bytes


class ComputationCostModel:
    """(op name, device) -> expected execution time in seconds.

    Args:
        homogeneous_fallback: When True (default), a key missing for one
            device falls back to the op's mean over devices where it *was*
            profiled.  The paper's testbed GPUs are identical V100s, and
            data parallelism replicates ops across all of them, so this is
            the fast path to a complete model the paper relies on
            ("each operation is replicated to different GPUs and their
            execution time on different devices is learned").
        device_scale: Optional per-device relative speed (1.0 = fastest;
            see :meth:`Topology.relative_compute_scales`).  The
            cross-device fallback normalizes each observation by its
            device's scale and rescales on lookup, so a time profiled on
            a fast GPU predicts a proportionally longer time on a slow
            one.  With all scales at 1.0 (the homogeneous testbed) this
            is exactly the unscaled mean.
    """

    def __init__(
        self,
        homogeneous_fallback: bool = True,
        device_scale: Optional[Dict[str, float]] = None,
    ) -> None:
        self.homogeneous_fallback = homogeneous_fallback
        self.device_scale = dict(device_scale or {})
        self._stats: Dict[Tuple[str, str], _RunningStat] = {}
        self._by_name: Dict[str, _RunningStat] = {}
        self._types: Dict[str, str] = {}
        self._bandwidth: Dict[str, _BandwidthProxy] = {}

    def _scale_of(self, device: str) -> float:
        return self.device_scale.get(device, 1.0)

    # ------------------------------------------------------------------
    def observe(
        self,
        op_name: str,
        op_type: str,
        device: str,
        duration: float,
        bytes_accessed: int = 0,
    ) -> None:
        """Record one profiled execution."""
        key = (op_name, device)
        self._stats.setdefault(key, _RunningStat()).add(duration)
        # The per-name pool stores scale-normalized ("fastest device
        # equivalent") durations so heterogeneous observations mix.
        self._by_name.setdefault(op_name, _RunningStat()).add(
            duration * self._scale_of(device)
        )
        self._types[op_name] = op_type
        if op_type in BANDWIDTH_BOUND_TYPES and bytes_accessed > 0:
            self._bandwidth.setdefault(device, _BandwidthProxy()).add(
                bytes_accessed, duration
            )

    def known(self, op_name: str, device: str) -> bool:
        return (op_name, device) in self._stats

    def profiled_time(self, op_name: str, device: str) -> Optional[float]:
        stat = self._stats.get((op_name, device))
        return stat.mean if stat else None

    # ------------------------------------------------------------------
    def time(self, op: Operation, device: str) -> float:
        """Expected execution time of ``op`` on ``device`` (0 = explore)."""
        direct = self._lookup(op.name, device)
        if direct is not None:
            return direct
        derived = self._derived_from_parent(op, device)
        if derived is not None:
            return derived
        if op.op_type in BANDWIDTH_BOUND_TYPES:
            proxy = self._bandwidth.get(device)
            if proxy is not None:
                estimate = proxy.estimate(op.bytes_accessed)
                if estimate is not None:
                    return estimate
        return 0.0

    def _lookup(self, op_name: str, device: str) -> Optional[float]:
        """Direct key, then (optionally) the homogeneous per-name mean."""
        direct = self.profiled_time(op_name, device)
        if direct is not None:
            return direct
        if self.homogeneous_fallback:
            stat = self._by_name.get(op_name)
            if stat is not None:
                return stat.mean / self._scale_of(device)
        return None

    def _derived_from_parent(self, op: Operation, device: str) -> Optional[float]:
        parent = op.attrs.get("split_parent")
        fraction = op.attrs.get("split_fraction")
        if parent is None:
            return None
        parent_time = self._lookup(str(parent), device)
        if parent_time is None:
            return None
        return parent_time * float(fraction if fraction else 1.0)

    def max_time(self, op: Operation, devices: Iterable[str]) -> float:
        """``w_i`` of the rank computation: max time over all devices."""
        return max((self.time(op, d) for d in devices), default=0.0)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[Tuple[str, str], float]:
        """Current means — used by the stability test of pre-training."""
        return {key: stat.mean for key, stat in self._stats.items()}

    @property
    def num_entries(self) -> int:
        return len(self._stats)
