"""Per-graph-version cost and adjacency cache for the strategy search.

One OS-DPOS run invokes DPOS once per surviving split candidate, and every
DPOS run re-reads the same (op, device) execution times, the same
max-over-pairs transmission times, the same edge byte counts, and the same
predecessor/successor lists — quantities that a candidate split changes
only for the handful of ops around the split point.  :class:`CostCache`
memoizes all of them keyed by op name and supports *selective*
invalidation of exactly the ops a split touched (the transaction journal
reports them), so candidate evaluation cost tracks the split size rather
than the graph size.

The cache is read-through: every value it returns is computed by the same
underlying cost-model calls DPOS would make without it, so cached and
uncached searches return bit-identical strategies.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..graph import Graph, GraphError, Operation


class CostCache:
    """Memoized cost-model and adjacency lookups over one working graph.

    Args:
        graph: The working graph the strategy search mutates in place.
        computation: Computation cost model (``time``/``max_time`` duck
            type).
        communication: Communication cost model (``time``/``max_time``).
        devices: Candidate device names, in topology order.

    The search must call :meth:`invalidate` with the touched-op set after
    every graph mutation (split apply, rollback, or commit); everything
    else is transparent.
    """

    def __init__(
        self,
        graph: Graph,
        computation,
        communication,
        devices: Sequence[str],
    ) -> None:
        self.graph = graph
        self.computation = computation
        self.communication = communication
        self.devices = list(devices)
        self.pairs: List[Tuple[str, str]] = [
            (a, b) for a in self.devices for b in self.devices if a != b
        ]
        # name-keyed memos
        self._time: Dict[Tuple[str, str], float] = {}
        self._weight: Dict[str, float] = {}
        self._min_weight: Dict[str, float] = {}
        self._persistent: Dict[str, int] = {}
        self._preds: Dict[str, List[Operation]] = {}
        self._succs: Dict[str, List[Operation]] = {}
        # edge-keyed memos, with a per-name index for invalidation
        self._edge_bytes: Dict[Tuple[str, str], int] = {}
        self._edge_comm: Dict[Tuple[str, str], float] = {}
        self._edge_index: Dict[str, Set[Tuple[str, str]]] = {}
        # graph-independent memos (the models are frozen during a search)
        self._comm_by_bytes: Dict[int, float] = {}
        self._pair_time: Dict[Tuple[str, str, int], float] = {}
        # observability: misses are counted unconditionally (the increment
        # is noise next to the cost-model call each miss already makes);
        # per-lookup counting is opt-in via enable_stats() so the default
        # hot path stays untouched.
        self.misses = 0
        self.lookups = 0
        self.invalidations = 0
        self.stats_enabled = False

    # ------------------------------------------------------------------
    # Computation times
    # ------------------------------------------------------------------
    def time(self, op: Operation, device: str) -> float:
        """Memoized ``computation.time(op, device)``."""
        key = (op.name, device)
        value = self._time.get(key)
        if value is None:
            self.misses += 1
            value = self._time[key] = self.computation.time(op, device)
        return value

    def weight(self, op: Operation) -> float:
        """``w_i`` of the rank computation: max time over all devices."""
        value = self._weight.get(op.name)
        if value is None:
            self.misses += 1
            value = self._weight[op.name] = max(
                (self.time(op, d) for d in self.devices), default=0.0
            )
        return value

    def min_weight(self, op: Operation) -> float:
        """Best-case execution time: min over all devices (bounds)."""
        value = self._min_weight.get(op.name)
        if value is None:
            self.misses += 1
            value = self._min_weight[op.name] = min(
                (self.time(op, d) for d in self.devices), default=0.0
            )
        return value

    def persistent_bytes(self, op: Operation) -> int:
        """Memoized ``op.persistent_bytes`` (summed over output tensors)."""
        value = self._persistent.get(op.name)
        if value is None:
            value = self._persistent[op.name] = op.persistent_bytes
        return value

    # ------------------------------------------------------------------
    # Communication times
    # ------------------------------------------------------------------
    def edge_bytes(self, src: Operation, dst: Operation) -> int:
        """Memoized ``graph.edge_bytes(src, dst)``."""
        key = (src.name, dst.name)
        value = self._edge_bytes.get(key)
        if value is None:
            self.misses += 1
            value = self._edge_bytes[key] = self.graph.edge_bytes(src, dst)
            self._edge_index.setdefault(src.name, set()).add(key)
            self._edge_index.setdefault(dst.name, set()).add(key)
        return value

    def edge_comm(self, src: Operation, dst: Operation) -> float:
        """``c_ij`` of the rank computation: worst case over device pairs."""
        key = (src.name, dst.name)
        value = self._edge_comm.get(key)
        if value is None:
            self.misses += 1
            num_bytes = self.edge_bytes(src, dst)
            value = self._comm_by_bytes.get(num_bytes)
            if value is None:
                value = self._comm_by_bytes[num_bytes] = (
                    self.communication.max_time(num_bytes, self.pairs)
                )
            self._edge_comm[key] = value
            self._edge_index.setdefault(src.name, set()).add(key)
            self._edge_index.setdefault(dst.name, set()).add(key)
        return value

    def pair_time(self, src_dev: str, dst_dev: str, num_bytes: int) -> float:
        """Memoized ``communication.time`` for one device pair."""
        key = (src_dev, dst_dev, num_bytes)
        value = self._pair_time.get(key)
        if value is None:
            value = self._pair_time[key] = self.communication.time(
                src_dev, dst_dev, num_bytes
            )
        return value

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def predecessors(self, op: Operation) -> List[Operation]:
        value = self._preds.get(op.name)
        if value is None:
            self.misses += 1
            value = self._preds[op.name] = self.graph.predecessors(op)
        return value

    def successors(self, op: Operation) -> List[Operation]:
        value = self._succs.get(op.name)
        if value is None:
            self.misses += 1
            value = self._succs[op.name] = self.graph.successors(op)
        return value

    def topological_order(self) -> List[Operation]:
        """Canonical (name-tie-broken) Kahn order via cached adjacency.

        Matches ``graph.topological_order(canonical=True)`` exactly.
        """
        indegree: Dict[str, int] = {}
        for op in self.graph:
            indegree[op.name] = len(self.predecessors(op))
        heap = [name for name, degree in indegree.items() if degree == 0]
        heapq.heapify(heap)
        order: List[Operation] = []
        while heap:
            op = self.graph.get_op(heapq.heappop(heap))
            order.append(op)
            for succ in self.successors(op):
                indegree[succ.name] -= 1
                if indegree[succ.name] == 0:
                    heapq.heappush(heap, succ.name)
        if len(order) != self.graph.num_ops:
            raise GraphError(
                f"graph {self.graph.name!r} contains a cycle; FastT only "
                "handles DAGs — unroll while-loops before scheduling"
            )
        return order

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate(self, names: Optional[Iterable[str]] = None) -> None:
        """Drop every memo involving ``names`` (or everything if None).

        The graph-independent memos (transfer time by byte count) survive:
        the communication model is frozen during a search, so those values
        cannot go stale.
        """
        self.invalidations += 1
        if names is None:
            self._time.clear()
            self._weight.clear()
            self._min_weight.clear()
            self._persistent.clear()
            self._preds.clear()
            self._succs.clear()
            self._edge_bytes.clear()
            self._edge_comm.clear()
            self._edge_index.clear()
            return
        for name in names:
            for device in self.devices:
                self._time.pop((name, device), None)
            self._weight.pop(name, None)
            self._min_weight.pop(name, None)
            self._persistent.pop(name, None)
            self._preds.pop(name, None)
            self._succs.pop(name, None)
            for key in self._edge_index.pop(name, ()):
                self._edge_bytes.pop(key, None)
                self._edge_comm.pop(key, None)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def enable_stats(self) -> None:
        """Count lookups on the hot accessors (observability runs only).

        Wraps the memoized lookups with per-call counting by rebinding
        them as instance attributes, so the default (un-observed) path
        keeps the plain methods and pays nothing.  Hits are then
        ``lookups - misses``.
        """
        if self.stats_enabled:
            return
        self.stats_enabled = True
        for name in (
            "time", "weight", "min_weight", "edge_bytes", "edge_comm",
            "predecessors", "successors",
        ):
            inner = getattr(self, name)

            def counting(*args, _inner=inner):
                self.lookups += 1
                return _inner(*args)

            setattr(self, name, counting)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/invalidation counters plus the live entry count.

        ``lookups`` and ``hits`` are only meaningful after
        :meth:`enable_stats`; ``misses`` (cost-model/adjacency
        evaluations) is always tracked.
        """
        return {
            "lookups": self.lookups,
            "hits": max(0, self.lookups - self.misses),
            "misses": self.misses,
            "invalidations": self.invalidations,
            "entries": self.num_entries,
        }

    @property
    def num_entries(self) -> int:
        """Total live memo entries (introspection/tests)."""
        return (
            len(self._time)
            + len(self._weight)
            + len(self._min_weight)
            + len(self._persistent)
            + len(self._preds)
            + len(self._succs)
            + len(self._edge_bytes)
            + len(self._edge_comm)
        )
