"""FastT's adaptive cost models, fitted from profiled step traces."""

from .cache import CostCache
from .communication import CommunicationCostModel
from .oracle import OracleCommunicationModel, OracleComputationModel
from .computation import BANDWIDTH_BOUND_TYPES, ComputationCostModel
from .stability import StabilityMonitor

__all__ = [
    "BANDWIDTH_BOUND_TYPES",
    "CommunicationCostModel",
    "CostCache",
    "OracleCommunicationModel",
    "OracleComputationModel",
    "ComputationCostModel",
    "StabilityMonitor",
]
