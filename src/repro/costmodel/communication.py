"""FastT's communication cost model (Sec. 4, Cost Models).

Transfers are grouped by (source device, destination device); for each
group a linear model ``time = slope * bytes + intercept`` is fitted with
least squares and refitted whenever new profiled samples arrive — the
paper's "tensor size vs transfer time" regression, which captures
available bandwidth and congestion along each device-device path.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster import Topology

Pair = Tuple[str, str]
#: Maps a device pair to an equivalence class sharing link behaviour
#: (e.g. "intra-server" vs "inter-server").
PairClassFn = Callable[[str, str], str]


@dataclass
class _LinearModel:
    slope: float
    intercept: float

    def predict(self, num_bytes: int) -> float:
        return max(self.slope * num_bytes + self.intercept, 0.0)


def _fit_samples(samples: List[Tuple[float, float]]) -> _LinearModel:
    xs = np.array([s[0] for s in samples])
    ys = np.array([s[1] for s in samples])
    if len(samples) >= 2 and float(xs.std()) > 0.0:
        slope, intercept = np.polyfit(xs, ys, 1)
        # Bandwidth cannot be negative; degenerate fits fall back to a
        # pure rate model through the origin.
        if slope <= 0.0:
            slope = float(ys.sum() / xs.sum())
            intercept = 0.0
        return _LinearModel(float(slope), float(intercept))
    rate = float(ys.sum() / xs.sum()) if float(xs.sum()) > 0 else 0.0
    return _LinearModel(rate, 0.0)


class CommunicationCostModel:
    """(src device, dst device, tensor bytes) -> expected transfer time.

    Args:
        pair_class: Optional equivalence-class function for device pairs.
            Transfers of an unprofiled pair are estimated from the pooled
            regression of its class (all NVLink pairs behave alike; all
            cross-server paths share the NIC), mirroring how quickly the
            paper's always-on profiler covers symmetric links.
        max_samples_per_pair: Sliding-window size per pair.
        topology: Optional cluster topology.  When attached, a pair with
            no profiled samples (and no class model) is estimated from
            the topology's uncontended route time — an optimistic prior
            that keeps the planner from treating never-profiled remote
            links as free.
    """

    def __init__(
        self,
        pair_class: Optional[PairClassFn] = None,
        max_samples_per_pair: int = 512,
        topology: Optional["Topology"] = None,
    ) -> None:
        self._pair_class = pair_class
        self._topology = topology
        self._samples: Dict[Pair, List[Tuple[float, float]]] = {}
        self._class_samples: Dict[str, List[Tuple[float, float]]] = {}
        self._models: Dict[Pair, _LinearModel] = {}
        self._class_models: Dict[str, _LinearModel] = {}
        self._dirty: Dict[Pair, bool] = {}
        self._class_dirty: Dict[str, bool] = {}
        self._global: Optional[_LinearModel] = None
        self._global_dirty = False
        self._max_samples = max_samples_per_pair
        # Queries lazily refit behind dirty flags, so even read paths
        # mutate the model; a reentrant lock makes one shared model safe
        # for concurrent service requests (fits are tiny — a few dozen
        # samples — so the critical sections stay short).
        self._lock = threading.RLock()

    def __getstate__(self) -> Dict[str, object]:
        # Locks don't pickle; the model otherwise does (bound methods of
        # the shared cost models travel into worker processes via the
        # experiment harness).  Flush pending refits so the copy starts
        # from a consistent snapshot.
        with self._lock:
            state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def observe(self, src: str, dst: str, num_bytes: int, duration: float) -> None:
        """Record one profiled transfer."""
        if src == dst:
            return
        pair = (src, dst)
        sample = (float(num_bytes), float(duration))
        with self._lock:
            samples = self._samples.setdefault(pair, [])
            samples.append(sample)
            if len(samples) > self._max_samples:
                del samples[: len(samples) - self._max_samples]
            self._dirty[pair] = True
            self._global_dirty = True
            if self._pair_class is not None:
                key = self._pair_class(src, dst)
                class_samples = self._class_samples.setdefault(key, [])
                if len(class_samples) >= 4 * self._max_samples:
                    del class_samples[: len(class_samples) - 4 * self._max_samples + 1]
                class_samples.append(sample)
                self._class_dirty[key] = True

    def _fit(self, pair: Pair) -> Optional[_LinearModel]:
        with self._lock:
            if self._dirty.get(pair):
                self._models[pair] = _fit_samples(self._samples[pair])
                self._dirty[pair] = False
            return self._models.get(pair)

    def _fit_class(self, key: str) -> Optional[_LinearModel]:
        with self._lock:
            if self._class_dirty.get(key):
                self._class_models[key] = _fit_samples(self._class_samples[key])
                self._class_dirty[key] = False
            return self._class_models.get(key)

    # ------------------------------------------------------------------
    def known(self, src: str, dst: str) -> bool:
        return (src, dst) in self._samples

    def time(self, src: str, dst: str, num_bytes: int) -> float:
        """Expected transfer time of ``num_bytes`` from ``src`` to ``dst``.

        Falls through pair regression -> class regression -> topology
        prior -> global pooled rate.  Without an attached topology a
        fully unexplored model answers 0 (the paper's "prefer to
        explore" rule); with one, unprofiled pairs cost at least their
        uncontended route time, so the planner never sees a remote
        link as free.
        """
        if src == dst or num_bytes <= 0:
            return 0.0
        model = self._fit((src, dst))
        if model is not None:
            return model.predict(num_bytes)
        if self._pair_class is not None:
            class_model = self._fit_class(self._pair_class(src, dst))
            if class_model is not None:
                return class_model.predict(num_bytes)
        if self._topology is not None:
            # Optimistic prior: the route's uncontended store-and-forward
            # time.  Preferred over the global pooled rate, which is
            # class-blind and underestimates slow links badly.
            optimistic = self._topology.transfer_time(src, dst, num_bytes)
            if optimistic > 0.0:
                return optimistic
        fallback = self._global_model()
        if fallback is not None:
            return fallback.predict(num_bytes)
        return 0.0  # explore: nothing has ever been profiled

    def _global_model(self) -> Optional[_LinearModel]:
        """Pooled rate over every sample, cached behind a dirty flag.

        Refitting on every unknown-pair query was O(total samples) in
        the search hot path; now the fit reruns only after new
        observations arrive.
        """
        with self._lock:
            if self._global_dirty:
                all_samples = [
                    s for samples in self._samples.values() for s in samples
                ]
                if not all_samples:
                    self._global = None
                else:
                    xs = np.array([s[0] for s in all_samples])
                    ys = np.array([s[1] for s in all_samples])
                    rate = float(ys.sum() / xs.sum()) if float(xs.sum()) > 0 else 0.0
                    self._global = _LinearModel(rate, 0.0)
                self._global_dirty = False
            return self._global

    def max_time(self, num_bytes: int, pairs: Iterable[Pair]) -> float:
        """``c_ij`` of the rank computation: worst case over device pairs."""
        return max(
            (self.time(src, dst, num_bytes) for src, dst in pairs), default=0.0
        )

    def pair_parameters(self, src: str, dst: str) -> Optional[Tuple[float, float]]:
        """(slope, intercept) of a fitted pair, for inspection/tests."""
        model = self._fit((src, dst))
        return (model.slope, model.intercept) if model else None

    @property
    def num_pairs(self) -> int:
        return len(self._samples)
