"""OS-DPOS — Operation Splitting DPOS (Alg. 2).

Runs DPOS for an initial schedule, recomputes the critical path under
that placement, then walks the critical path in decreasing order of
computation time, trying to split each operation along each of its
parallelizable dimensions with each candidate split count.  A split is
committed only if the best resulting DPOS finish time beats the current
one; the first non-improving operation stops the search (the paper's
early exit).

Candidate evaluation comes in two flavours that return bit-identical
strategies:

* **naive** (``naive=True``): every candidate deep-copies the whole
  graph and reruns DPOS cold — the reference implementation, O(graph
  size) per candidate before DPOS even starts.
* **incremental** (default): one working graph is mutated in place
  through :class:`~repro.graph.SplitTransaction` (apply, evaluate,
  undo — all O(split size)), cost and adjacency lookups are served from
  a :class:`~repro.costmodel.CostCache` invalidated only for the ops a
  split touched, and (with ``prune=True``) a placement-independent
  lower bound skips the DPOS rerun for candidates that provably cannot
  beat the incumbent finish time.  ``workers=N`` additionally fans the
  surviving candidates of each op out to worker processes.
"""

from __future__ import annotations

import itertools
import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cluster import Topology
from ..costmodel import (
    CommunicationCostModel,
    ComputationCostModel,
    CostCache,
)
from ..graph import Graph, Operation
from ..graph.coarsen import CoarsePlan, SuperComputationModel, contract_graph
from ..graph.rewrite import (
    SplitDecision,
    SplitError,
    SplitTransaction,
    split_operation,
    sub_op_names,
)
from ..obs import MetricsSnapshot, Observability, get_obs
from .context import WarmStartSeed
from .dpos import DPOS, DPOSResult
from .ranks import compute_ranks, critical_path
from .strategy import Strategy

#: "No explicit value" marker for OSDPOS kwargs that fall back to
#: :class:`SearchOptions` fields.
_UNSET = object()


@dataclass
class SearchOptions:
    """Keyword-only knobs of the OS-DPOS strategy search (Alg. 2).

    The same object configures both the low-level :class:`OSDPOS` engine
    and the workflow-level ``FastTConfig.search`` sub-config (where the
    default ``max_candidate_ops=12`` applies; a bare :class:`OSDPOS`
    constructed without options walks the full critical path, as in the
    paper).

    Attributes:
        enable_splitting: Try operation splits at all; ``False``
            degenerates the search to plain DPOS.
        split_counts: Candidate split numbers; ``None`` means
            :func:`default_split_counts` of the cluster size.
        max_candidate_ops: Cap on critical-path ops examined
            (``None`` = the full path; the early exit usually stops far
            sooner).
        naive: Use the reference copy-per-candidate evaluation path
            (kept for the equivalence suite and benchmark baselines).
        prune: Skip candidates the lower bound proves hopeless
            (incremental path only; never changes the strategy).
        workers: Fan surviving candidates out to this many worker
            processes (incremental path only).
        coarsen: Hierarchical search over a contracted graph
            (:func:`~repro.graph.contract_graph`).  ``True`` forces it,
            ``False`` disables it (exact search, byte-identical to the
            seed), and ``"auto"`` (default) turns it on only for graphs
            with at least ``coarsen_threshold`` ops — small graphs never
            change behaviour.
        coarsen_threshold: Op count at which ``"auto"`` switches to the
            coarse path.
        coarsen_target: Approximate number of coarse nodes the
            contraction aims for.
    """

    enable_splitting: bool = True
    split_counts: Optional[List[int]] = None
    max_candidate_ops: Optional[int] = 12
    naive: bool = False
    prune: bool = True
    workers: Optional[int] = None
    coarsen: object = "auto"
    coarsen_threshold: int = 5000
    coarsen_target: int = 256

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be a positive integer or None")
        if self.coarsen not in (True, False, "auto"):
            raise ValueError('coarsen must be True, False, or "auto"')
        if self.coarsen_threshold < 1:
            raise ValueError("coarsen_threshold must be >= 1")
        if self.coarsen_target < 1:
            raise ValueError("coarsen_target must be >= 1")


_search_options_init = SearchOptions.__init__


def _search_options_kwonly_init(self, *args, **kwargs):
    if args:
        raise TypeError(
            "SearchOptions takes keyword arguments only, e.g. "
            "SearchOptions(max_candidate_ops=6, workers=2)"
        )
    _search_options_init(self, **kwargs)


SearchOptions.__init__ = _search_options_kwonly_init  # type: ignore[method-assign]


@dataclass
class OSDPOSResult:
    """Output of Alg. 2: rewritten graph, full strategy, search metrics.

    The search counters live in ``metrics`` (a
    :class:`~repro.obs.MetricsSnapshot`); ``candidates_evaluated`` and
    friends remain as read-only views over it.
    """

    graph: Graph
    strategy: Strategy
    finish_time: float
    dpos_result: DPOSResult
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)

    @property
    def split_list(self) -> List[SplitDecision]:
        return self.strategy.split_list

    @property
    def candidates_evaluated(self) -> int:
        """View of ``metrics["search.candidates_evaluated"]``."""
        return int(self.metrics.get("search.candidates_evaluated", 0))

    @property
    def splits_rejected(self) -> int:
        """View of ``metrics["search.splits_rejected"]``."""
        return int(self.metrics.get("search.splits_rejected", 0))

    @property
    def candidates_pruned(self) -> int:
        """View of ``metrics["search.candidates_pruned"]``."""
        return int(self.metrics.get("search.candidates_pruned", 0))


def default_split_counts(num_devices: int) -> List[int]:
    """Candidate split numbers: 2, 4, ..., up to the device count.

    The paper tries split numbers up to the number of GPUs; powers of two
    keep the candidate space small without losing the interesting points
    on an even-sized cluster.
    """
    counts = sorted({n for n in (2, 4, 8, num_devices) if 2 <= n <= num_devices})
    return counts


class _SearchBounds:
    """Placement-independent finish-time bounds over one graph version.

    ``down[o]`` lower-bounds ``finish(o)`` and ``up[o]`` lower-bounds
    ``finish - start(o)`` in *any* schedule DPOS can produce for this
    graph: an op runs for at least its min-over-devices time, and chains
    accumulate through predecessors/successors of **positive max
    weight** — a positive-weight predecessor has a strictly larger
    upward rank, is therefore placed earlier in the DPOS sequence, and
    the EFT computation then provably waits for it.  (Zero-weight rank
    ties may be placed out of order — DPOS treats an unplaced
    predecessor's data as immediately available — so they contribute
    nothing to the bound.)  Both arrays cost one O(V+E) sweep per
    committed graph version.
    """

    def __init__(self, cache: CostCache) -> None:
        down: Dict[str, float] = {}
        up: Dict[str, float] = {}
        order = cache.topological_order()
        for op in order:
            best = 0.0
            for pred in cache.predecessors(op):
                if cache.weight(pred) > 0.0 and down[pred.name] > best:
                    best = down[pred.name]
            down[op.name] = best + cache.min_weight(op)
        for op in reversed(order):
            tail = 0.0
            if cache.weight(op) > 0.0:
                for succ in cache.successors(op):
                    if up[succ.name] > tail:
                        tail = up[succ.name]
            up[op.name] = tail + cache.min_weight(op)
        self.down = down
        self.up = up


@dataclass
class _OpOutcome:
    """Result of evaluating every split candidate of one CP op."""

    best: Optional[Tuple[SplitDecision, DPOSResult]]
    evaluated: int
    pruned: int
    attempted: int


def _worker_init(recursion_limit: int) -> None:
    sys.setrecursionlimit(recursion_limit)


def _evaluate_candidate(
    dpos: DPOS, graph: Graph, op_name: str, dim: str, num_splits: int
) -> Optional[DPOSResult]:
    """Evaluate one split candidate in a worker process (``workers=N``).

    The worker receives its own pickled copy of the working graph, so it
    applies the split destructively; DPOS output is a pure function of
    graph content, hence identical to the in-process evaluation.
    """
    try:
        split_operation(graph, graph.get_op(op_name), dim, num_splits)
    except SplitError:
        return None
    cache = CostCache(
        graph, dpos.computation, dpos.communication, dpos.topology.device_names
    )
    return dpos.run(graph, cost_cache=cache)


class OSDPOS:
    """Alg. 2 — operation-splitting search over a :class:`DPOS` engine.

    The constructor mirrors :class:`DPOS`: either pass a configured
    ``dpos`` instance, or the same ``topology``/``computation``/
    ``communication``/``memory_fraction`` parameters DPOS takes and one
    is built internally.  All search knobs are keyword-only and can be
    given either individually or bundled as a :class:`SearchOptions`
    (individual kwargs win over ``options`` fields).

    Args:
        dpos: The placement/ordering engine (carries cluster+cost models).
        topology: Cluster to place onto (alternative to ``dpos``).
        computation: Computation cost model (alternative to ``dpos``).
        communication: Communication cost model (alternative to ``dpos``).
        memory_fraction: Planner memory headroom when building the
            internal DPOS.
        options: Bundled :class:`SearchOptions`; without it the engine
            defaults to the paper's full-critical-path walk
            (``max_candidate_ops=None``).
        split_counts: Candidate split numbers; default
            :func:`default_split_counts` of the cluster size.
        max_candidate_ops: Cap on how many critical-path ops are examined.
        naive: Use the reference copy-per-candidate evaluation path (no
            transactions, no cache, no pruning).  Kept for the
            equivalence suite and benchmark baselines.
        prune: Skip a candidate's DPOS rerun when the lower bound proves
            it cannot beat the incumbent finish time (incremental path
            only; never changes the returned strategy).
        workers: Evaluate each op's surviving candidates in this many
            worker processes (incremental path only; the cost models
            must be picklable, which the oracle models are).
        obs: Observability hook (spans per search/op, search counters and
            cache hit/miss metrics); defaults to the zero-cost no-op.
    """

    def __init__(
        self,
        dpos: Optional[DPOS] = None,
        *,
        topology: Optional[Topology] = None,
        computation: Optional[ComputationCostModel] = None,
        communication: Optional[CommunicationCostModel] = None,
        memory_fraction: float = 0.9,
        options: Optional[SearchOptions] = None,
        split_counts: object = _UNSET,
        max_candidate_ops: object = _UNSET,
        naive: object = _UNSET,
        prune: object = _UNSET,
        workers: object = _UNSET,
        coarsen: object = _UNSET,
        coarsen_threshold: object = _UNSET,
        coarsen_target: object = _UNSET,
        obs: Optional[Observability] = None,
    ) -> None:
        if dpos is None:
            if topology is None or computation is None or communication is None:
                raise TypeError(
                    "OSDPOS needs either a DPOS instance or all of "
                    "topology=, computation=, communication="
                )
            dpos = DPOS(
                topology, computation, communication,
                memory_fraction=memory_fraction,
                obs=obs,
            )
        elif topology is not None or computation is not None \
                or communication is not None:
            raise TypeError(
                "pass either dpos or topology/computation/communication, "
                "not both"
            )
        self.dpos = dpos
        self.obs = get_obs(obs)

        base = options if options is not None \
            else SearchOptions(max_candidate_ops=None)
        if split_counts is _UNSET:
            split_counts = base.split_counts
        if max_candidate_ops is _UNSET:
            max_candidate_ops = base.max_candidate_ops
        if naive is _UNSET:
            naive = base.naive
        if prune is _UNSET:
            prune = base.prune
        if workers is _UNSET:
            workers = base.workers
        if coarsen is _UNSET:
            coarsen = base.coarsen
        if coarsen_threshold is _UNSET:
            coarsen_threshold = base.coarsen_threshold
        if coarsen_target is _UNSET:
            coarsen_target = base.coarsen_target
        if not base.enable_splitting:
            split_counts = []

        num_devices = len(dpos.topology.devices)
        self.split_counts = (
            list(split_counts)  # type: ignore[arg-type]
            if split_counts is not None
            else default_split_counts(num_devices)
        )
        self.max_candidate_ops = max_candidate_ops
        self.naive = bool(naive)
        self.prune = bool(prune)
        if workers is not None and workers < 1:  # type: ignore[operator]
            raise ValueError("workers must be a positive integer or None")
        self.workers = workers
        if coarsen not in (True, False, "auto"):
            raise ValueError('coarsen must be True, False, or "auto"')
        self.coarsen = coarsen
        self.coarsen_threshold = int(coarsen_threshold)  # type: ignore[call-overload]
        self.coarsen_target = int(coarsen_target)  # type: ignore[call-overload]

    # ------------------------------------------------------------------
    def run(
        self,
        graph: Graph,
        *,
        warm_start: Optional[WarmStartSeed] = None,
    ) -> OSDPOSResult:
        """Compute split list, placement, and order for ``graph``.

        ``graph`` itself is never mutated; the search works on a private
        copy.  All cold evaluation modes return identical strategies.

        ``warm_start`` replays a cached strategy's partition list
        through :class:`~repro.graph.SplitTransaction` and schedules the
        result with one DPOS pass instead of walking the critical path —
        the incremental-re-optimization path of :mod:`repro.serve`.  A
        safety valve falls back to the cold search when the replayed
        schedule lands above the seed's reference makespan envelope.
        """
        obs = self.obs
        use_coarse = (
            self.coarsen
            if self.coarsen != "auto"
            else graph.num_ops >= self.coarsen_threshold
        )
        if warm_start is not None:
            mode = "warm"
        elif use_coarse:
            mode = "coarse"
        else:
            mode = "naive" if self.naive else "incremental"
        search = obs.provenance.begin_search(graph=graph.name, mode=mode)
        if obs.events.enabled:
            obs.events.emit(
                "search.start",
                graph=graph.name,
                ops=graph.num_ops,
                mode=mode,
            )
        with obs.tracer.span(
            "search.osdpos",
            cat="search",
            args={
                "graph": graph.name,
                "ops": graph.num_ops,
                "mode": mode,
            },
        ):
            if warm_start is not None:
                result = self._run_warm(graph, search, warm_start)
            elif use_coarse:
                result = self._run_coarse(graph, search)
            elif self.naive:
                result = self._run_naive(graph, search)
            else:
                result = self._run_incremental(graph, search)
        if obs.events.enabled:
            obs.events.emit(
                "search.finish",
                graph=graph.name,
                mode=mode,
                makespan=result.finish_time,
                splits=len(result.strategy.split_list),
            )
        if obs.enabled:
            metrics = obs.metrics
            metrics.counter("search.runs").inc()
            for name, value in result.metrics.items():
                if isinstance(value, int):
                    metrics.counter(name).inc(value)
            metrics.gauge("search.finish_time_estimate").set(result.finish_time)
        return result

    #: Public alias: ``search()`` is the documented entry point shared
    #: with :meth:`DPOS.search`; ``run()`` is kept for existing callers.
    def search(self, graph: Graph) -> OSDPOSResult:
        """Alias of :meth:`run` (consistent with :meth:`DPOS.search`)."""
        return self.run(graph)

    # ------------------------------------------------------------------
    # Telemetry (no-ops unless the obs hook carries a live event bus)
    # ------------------------------------------------------------------
    def _emit_op_start(
        self, op_name: str, index: int, total: int, incumbent: float
    ) -> None:
        events = self.obs.events
        if events.enabled:
            events.emit(
                "search.op.start",
                op=op_name, index=index + 1, total=total,
                incumbent=incumbent,
            )

    def _emit_commit(self, decision: SplitDecision, makespan: float) -> None:
        events = self.obs.events
        if events.enabled:
            events.emit(
                "search.commit",
                op=decision.op_name, dim=decision.dim,
                num_splits=decision.num_splits, makespan=makespan,
            )

    def _emit_op_finish(
        self, op_name: str, verdict: str, makespan: Optional[float] = None
    ) -> None:
        events = self.obs.events
        if events.enabled:
            events.emit(
                "search.op.finish",
                op=op_name, verdict=verdict, makespan=makespan,
            )

    # ------------------------------------------------------------------
    # Reference path: copy the whole graph per candidate
    # ------------------------------------------------------------------
    def _run_naive(self, graph: Graph, search) -> OSDPOSResult:
        current_graph = graph.copy()
        best = self.dpos.run(current_graph)
        search.record_initial(best.finish_time)
        split_list: List[SplitDecision] = []
        candidates_evaluated = 0
        splits_rejected = 0

        if self.split_counts:
            cp_ops = self._placement_critical_path(current_graph, best)
            if self.max_candidate_ops is not None:
                cp_ops = cp_ops[: self.max_candidate_ops]
            search.set_candidate_ops(cp_ops)
            for op_index, op_name in enumerate(cp_ops):
                if op_name not in current_graph:
                    continue  # consumed by an earlier committed split
                op = current_graph.get_op(op_name)
                if not op.is_splittable:
                    continue
                rnd = search.begin_op(op_name, incumbent=best.finish_time)
                self._emit_op_start(
                    op_name, op_index, len(cp_ops), best.finish_time
                )
                outcome = self._best_split_for(current_graph, op, rnd)
                if outcome is None:
                    rnd.no_candidates()
                    self._emit_op_finish(op_name, "no-candidates")
                    continue
                decision, candidate_graph, candidate_result, tried = outcome
                candidates_evaluated += tried
                if candidate_result.finish_time < best.finish_time:
                    rnd.accept(
                        decision.dim, decision.num_splits,
                        sub_ops=sub_op_names(
                            decision.op_name, decision.num_splits
                        ),
                        makespan=candidate_result.finish_time,
                    )
                    split_list.append(decision)
                    current_graph = candidate_graph
                    best = candidate_result
                    self._emit_commit(decision, best.finish_time)
                    self._emit_op_finish(
                        op_name, "accepted", best.finish_time
                    )
                else:
                    rnd.reject(best_makespan=candidate_result.finish_time)
                    splits_rejected += 1
                    self._emit_op_finish(
                        op_name, "rejected", candidate_result.finish_time
                    )
                    break  # paper: stop at the first non-improving CP op

        return self._package(
            current_graph, best, split_list,
            candidates_evaluated, splits_rejected, 0,
            search=search,
        )

    def _best_split_for(
        self, base_graph: Graph, op: Operation, rnd
    ) -> Optional[Tuple[SplitDecision, Graph, DPOSResult, int]]:
        """Try every (dimension, split count) for ``op``; keep the best."""
        best: Optional[Tuple[SplitDecision, Graph, DPOSResult]] = None
        tried = 0
        for dim, count in itertools.product(
            sorted(op.split_dims), self.split_counts
        ):
            candidate_graph = base_graph.copy()
            try:
                split_operation(
                    candidate_graph, candidate_graph.get_op(op.name), dim, count
                )
            except SplitError:
                rnd.candidate(dim, count, "infeasible")
                continue  # extent too small for this count, etc.
            result = self.dpos.run(candidate_graph)
            tried += 1
            rnd.candidate(dim, count, "rejected", makespan=result.finish_time)
            if best is None or result.finish_time < best[2].finish_time:
                best = (
                    SplitDecision(op_name=op.name, dim=dim, num_splits=count),
                    candidate_graph,
                    result,
                )
        if best is None:
            return None
        return (*best, tried)

    # ------------------------------------------------------------------
    # Coarse path: hierarchical search over a contracted graph
    # ------------------------------------------------------------------
    def _coarse_engine(
        self, plan: CoarsePlan, memo: Dict[Tuple[str, str], float]
    ) -> DPOS:
        """A DPOS over the coarse graph, sharing this engine's models.

        Super-ops are priced by :class:`SuperComputationModel` (exact
        member sums, memoized across re-contractions); communication uses
        the fine model unchanged because coarse edges carry the fine
        boundary tensors.
        """
        engine = DPOS(
            self.dpos.topology,
            SuperComputationModel(self.dpos.computation, plan, memo),
            self.dpos.communication,
            obs=self.obs,
        )
        engine.capacities = dict(self.dpos.capacities)
        engine.insertion_scheduling = self.dpos.insertion_scheduling
        return engine

    def _run_coarse(self, graph: Graph, search) -> OSDPOSResult:
        """Hierarchical OS-DPOS: place coarse, refine splits fine.

        Placement and ordering run over the contracted graph (the cost
        aggregates are exact, so the coarse makespan estimate is the fine
        serial-member schedule's); split candidates are fine ops drawn
        from the members of coarse critical-path nodes, each evaluated by
        re-contracting the mutated fine graph.  The final coarse
        strategy expands losslessly to a complete fine placement/order.
        """
        working = graph.copy()
        memo: Dict[Tuple[str, str], float] = {}
        plan = contract_graph(
            working, target=self.coarsen_target, events=self.obs.events
        )
        engine = self._coarse_engine(plan, memo)
        best = engine.run(plan.coarse)
        search.record_initial(best.finish_time)
        split_list: List[SplitDecision] = []
        evaluated = 0
        rejected = 0

        if self.split_counts:
            cp_ops = self._coarse_candidate_ops(plan, best, engine)
            if self.max_candidate_ops is not None:
                cp_ops = cp_ops[: self.max_candidate_ops]
            search.set_candidate_ops(cp_ops)
            tracer = self.obs.tracer
            for op_index, op_name in enumerate(cp_ops):
                if op_name not in working:
                    continue  # consumed by an earlier committed split
                op = working.get_op(op_name)
                if not op.is_splittable:
                    continue
                rnd = search.begin_op(op_name, incumbent=best.finish_time)
                self._emit_op_start(
                    op_name, op_index, len(cp_ops), best.finish_time
                )
                with tracer.span(
                    f"evaluate:{op_name}", cat="search.candidates"
                ):
                    outcome = self._best_coarse_split(working, op, memo, rnd)
                if outcome is None:
                    rnd.no_candidates()
                    self._emit_op_finish(op_name, "no-candidates")
                    continue
                decision, candidate_result, tried = outcome
                evaluated += tried
                if candidate_result.finish_time < best.finish_time:
                    # Re-apply the winner: the transaction name counters
                    # were restored by undo, so the sub-ops come back
                    # under the exact names the evaluation saw and the
                    # re-contraction reproduces the evaluated coarse
                    # graph verbatim.
                    txn = SplitTransaction(
                        working, op, decision.dim, decision.num_splits
                    )
                    txn.apply()
                    rnd.accept(
                        decision.dim, decision.num_splits,
                        sub_ops=[o.name for o in txn.sub_ops],
                        makespan=candidate_result.finish_time,
                    )
                    txn.commit()
                    split_list.append(decision)
                    best = candidate_result
                    plan = contract_graph(
                        working,
                        target=self.coarsen_target,
                        events=self.obs.events,
                    )
                    tracer.instant(
                        f"commit-split:{op_name}",
                        cat="search",
                        args={
                            "dim": decision.dim,
                            "num_splits": decision.num_splits,
                            "finish_time": candidate_result.finish_time,
                        },
                    )
                    self._emit_commit(decision, best.finish_time)
                    self._emit_op_finish(
                        op_name, "accepted", best.finish_time
                    )
                else:
                    rnd.reject(best_makespan=candidate_result.finish_time)
                    rejected += 1
                    self._emit_op_finish(
                        op_name, "rejected", candidate_result.finish_time
                    )
                    break  # first non-improving CP op stops the search

        search.set_super_ops(plan.super_ops)
        fine_result = self._expand_result(plan, best, split_list)
        return self._package(
            working, fine_result, split_list, evaluated, rejected, 0,
            search=search,
        )

    def _best_coarse_split(
        self,
        working: Graph,
        op: Operation,
        memo: Dict[Tuple[str, str], float],
        rnd,
    ) -> Optional[Tuple[SplitDecision, DPOSResult, int]]:
        """Evaluate every (dim, count) of one fine op on the coarse graph.

        Each candidate is applied transactionally to the fine working
        graph, re-contracted, scheduled coarse, and undone.
        """
        best: Optional[Tuple[SplitDecision, DPOSResult]] = None
        tried = 0
        for dim, count in itertools.product(
            sorted(op.split_dims), self.split_counts
        ):
            txn = SplitTransaction(working, op, dim, count)
            try:
                txn.apply()
            except SplitError:
                rnd.candidate(dim, count, "infeasible")
                continue  # extent too small for this count, etc.
            tried += 1
            plan = contract_graph(working, target=self.coarsen_target)
            result = self._coarse_engine(plan, memo).run(plan.coarse)
            rnd.candidate(dim, count, "rejected", makespan=result.finish_time)
            txn.undo()
            if best is None or result.finish_time < best[1].finish_time:
                best = (txn.decision, result)
        if best is None:
            return None
        return (*best, tried)

    def _coarse_candidate_ops(
        self, plan: CoarsePlan, result: DPOSResult, engine: DPOS
    ) -> List[str]:
        """Fine split candidates from the coarse critical path.

        The coarse CP is computed under the committed coarse placement
        (same recipe as the flat search); its nodes then expand to their
        fine members, ranked by computation time on the device the
        member inherits.
        """
        coarse_cp = self._placement_critical_path(
            plan.coarse, result, engine=engine
        )
        placement = result.strategy.placement
        computation = self.dpos.computation
        pairs: List[Tuple[str, float]] = []
        for coarse_name in coarse_cp:
            dev = placement[coarse_name]
            members = plan.member_ops.get(coarse_name)
            if members is None:
                members = [plan.fine.get_op(coarse_name)]
            for member in members:
                weight = computation.time(member, dev)
                if weight > 0.0:
                    pairs.append((member.name, weight))
        return [name for name, _ in sorted(pairs, key=lambda p: -p[1])]

    def _expand_result(
        self,
        plan: CoarsePlan,
        coarse: DPOSResult,
        split_list: List[SplitDecision],
    ) -> DPOSResult:
        """Lossless expansion of a coarse schedule to the fine graph.

        Members inherit their super-op's device; the fine order expands
        each coarse slot into its members' fine topological order (a
        valid fine topological order).  Times/ranks are the coarse
        aggregates each member belongs to; ``decisions`` stay keyed by
        coarse node so provenance can report the super-op that absorbed
        an op (see ``SearchRecord.super_ops``).
        """
        placement = plan.expand_placement(coarse.strategy.placement)
        order = plan.expand_order(coarse.strategy.order)
        start_times: Dict[str, float] = {}
        finish_times: Dict[str, float] = {}
        ranks: Dict[str, float] = {}
        for coarse_name, member_names in plan.members.items():
            start = coarse.start_times[coarse_name]
            finish = coarse.finish_times[coarse_name]
            rank = coarse.ranks[coarse_name]
            for member in member_names:
                start_times[member] = start
                finish_times[member] = finish
                ranks[member] = rank
        critical = [
            member
            for coarse_name in coarse.critical_path
            for member in plan.members[coarse_name]
        ]
        strategy = Strategy(
            placement=placement,
            order=order,
            split_list=split_list,
            estimated_time=coarse.finish_time,
            label="os-dpos" if split_list else "dpos",
        )
        return DPOSResult(
            strategy=strategy,
            finish_time=coarse.finish_time,
            start_times=start_times,
            finish_times=finish_times,
            critical_path=critical,
            ranks=ranks,
            decisions=coarse.decisions,
        )

    # ------------------------------------------------------------------
    # Warm path: replay a cached partition list, schedule once
    # ------------------------------------------------------------------
    def _run_warm(
        self, graph: Graph, search, seed: WarmStartSeed
    ) -> OSDPOSResult:
        """Seed the search from a cached strategy (Alg. 2 skipped).

        Each :class:`SplitDecision` of the seed is replayed onto a
        working copy through the transactional rewrite machinery —
        decisions whose op vanished from the edited graph, or whose
        dimension can no longer accommodate the split count, are
        skipped rather than failing the request.  One DPOS pass then
        prices the replayed partition list on this graph.  The result
        costs O(splits + one placement) instead of a full critical-path
        walk; the safety valve below reverts to the cold search when
        the replay is evidently a bad fit.
        """
        obs = self.obs
        working = graph.copy()
        devices = self.dpos.topology.device_names
        applied: List[SplitDecision] = []
        skipped = 0
        # An options bundle with splitting disabled never replays splits
        # (the fingerprint the seed was cached under implies it had them
        # enabled, but a mismatched caller must still get what its own
        # options promise).
        decisions = seed.split_list if self.split_counts else []
        for decision in decisions:
            if decision.op_name not in working:
                skipped += 1
                continue
            op = working.get_op(decision.op_name)
            if not op.is_splittable:
                skipped += 1
                continue
            txn = SplitTransaction(
                working, op, decision.dim, decision.num_splits
            )
            try:
                txn.apply()
            except SplitError:
                skipped += 1
                continue
            txn.commit()
            applied.append(decision)
        cache = CostCache(
            working, self.dpos.computation, self.dpos.communication, devices
        )
        if obs.enabled:
            cache.enable_stats()
        best = self.dpos.run(working, cost_cache=cache)
        search.record_initial(best.finish_time)

        reference = seed.reference_makespan
        if (
            reference is not None
            and reference > 0.0
            and best.finish_time > seed.safety_factor * reference
        ):
            # Safety valve: the cached strategy evidently no longer fits
            # this graph (the edit moved the bottleneck); pay for a cold
            # search rather than serve a degenerate schedule.
            if obs.events.enabled:
                obs.events.emit(
                    "search.warm.fallback",
                    graph=graph.name,
                    makespan=best.finish_time,
                    reference=reference,
                    factor=seed.safety_factor,
                    source=seed.source,
                )
            result = self._run_incremental(graph, search)
            result.metrics["search.warm_fallbacks"] = 1
            return result

        if obs.events.enabled:
            obs.events.emit(
                "search.warm",
                graph=graph.name,
                applied=len(applied),
                skipped=skipped,
                makespan=best.finish_time,
                source=seed.source,
            )
        result = self._package(
            working, best, applied, 0, 0, 0, cache=cache, search=search
        )
        result.strategy.label = "warm-start"
        result.metrics["search.warm_runs"] = 1
        result.metrics["search.warm_splits_applied"] = len(applied)
        result.metrics["search.warm_splits_skipped"] = skipped
        return result

    # ------------------------------------------------------------------
    # Incremental path: one working graph, transactional candidates
    # ------------------------------------------------------------------
    def _run_incremental(self, graph: Graph, search) -> OSDPOSResult:
        working = graph.copy()
        devices = self.dpos.topology.device_names
        cache = CostCache(
            working, self.dpos.computation, self.dpos.communication, devices
        )
        if self.obs.enabled:
            cache.enable_stats()
        best = self.dpos.run(working, cost_cache=cache)
        search.record_initial(best.finish_time)
        split_list: List[SplitDecision] = []
        evaluated = 0
        pruned = 0
        rejected = 0

        executor: Optional[ProcessPoolExecutor] = None
        try:
            if self.split_counts:
                if self.workers is not None:
                    # Deep graphs recurse when pickled (tensor -> producer
                    # -> inputs -> ...); raise the limit in both the
                    # submitting process and the workers.
                    limit = max(
                        sys.getrecursionlimit(), 8 * working.num_ops + 1000
                    )
                    sys.setrecursionlimit(limit)
                    executor = ProcessPoolExecutor(
                        max_workers=self.workers,
                        initializer=_worker_init,
                        initargs=(limit,),
                    )
                bounds = _SearchBounds(cache) if self.prune else None
                cp_ops = self._placement_critical_path(
                    working, best, cache=cache
                )
                if self.max_candidate_ops is not None:
                    cp_ops = cp_ops[: self.max_candidate_ops]
                search.set_candidate_ops(cp_ops)
                tracer = self.obs.tracer
                for op_index, op_name in enumerate(cp_ops):
                    if op_name not in working:
                        continue  # consumed by an earlier committed split
                    op = working.get_op(op_name)
                    if not op.is_splittable:
                        continue
                    rnd = search.begin_op(op_name, incumbent=best.finish_time)
                    self._emit_op_start(
                        op_name, op_index, len(cp_ops), best.finish_time
                    )
                    with tracer.span(
                        f"evaluate:{op_name}", cat="search.candidates"
                    ):
                        outcome = self._evaluate_op(
                            working, op, cache, bounds, best.finish_time,
                            executor, rnd,
                        )
                    evaluated += outcome.evaluated
                    pruned += outcome.pruned
                    if outcome.attempted == 0:
                        rnd.no_candidates()
                        self._emit_op_finish(op_name, "no-candidates")
                        continue  # no structurally possible split
                    if (
                        outcome.best is not None
                        and outcome.best[1].finish_time < best.finish_time
                    ):
                        decision, result = outcome.best
                        txn = SplitTransaction(
                            working, op, decision.dim, decision.num_splits
                        )
                        txn.apply()
                        rnd.accept(
                            decision.dim, decision.num_splits,
                            sub_ops=[o.name for o in txn.sub_ops],
                            makespan=result.finish_time,
                        )
                        cache.invalidate(txn.commit())
                        split_list.append(decision)
                        best = result
                        tracer.instant(
                            f"commit-split:{op_name}",
                            cat="search",
                            args={
                                "dim": decision.dim,
                                "num_splits": decision.num_splits,
                                "finish_time": result.finish_time,
                            },
                        )
                        self._emit_commit(decision, best.finish_time)
                        self._emit_op_finish(
                            op_name, "accepted", best.finish_time
                        )
                        if self.prune:
                            bounds = _SearchBounds(cache)
                    else:
                        rnd.reject(
                            best_makespan=(
                                None if outcome.best is None
                                else outcome.best[1].finish_time
                            )
                        )
                        rejected += 1
                        self._emit_op_finish(
                            op_name,
                            "rejected",
                            None if outcome.best is None
                            else outcome.best[1].finish_time,
                        )
                        break  # first non-improving CP op stops the search
        finally:
            if executor is not None:
                executor.shutdown()

        return self._package(
            working, best, split_list, evaluated, rejected, pruned,
            cache=cache, search=search,
        )

    def _evaluate_op(
        self,
        working: Graph,
        op: Operation,
        cache: CostCache,
        bounds: Optional[_SearchBounds],
        incumbent: float,
        executor: Optional[ProcessPoolExecutor],
        rnd,
    ) -> _OpOutcome:
        """Apply/evaluate/undo every (dim, count) candidate of one op.

        With an ``executor``, candidates that survive the bound check are
        fanned out to worker processes; results are reduced in submission
        order so tie-breaking matches the serial path exactly.
        """
        best: Optional[Tuple[SplitDecision, DPOSResult]] = None
        evaluated = 0
        pruned = 0
        attempted = 0
        survivors: List[Tuple[str, int]] = []
        for dim, count in itertools.product(
            sorted(op.split_dims), self.split_counts
        ):
            txn = SplitTransaction(working, op, dim, count)
            try:
                txn.apply()
            except SplitError:
                cache.invalidate(txn.touched)
                rnd.candidate(dim, count, "infeasible")
                continue  # extent too small for this count, etc.
            cache.invalidate(txn.touched)
            attempted += 1
            if bounds is not None:
                # A candidate is hopeless once it provably cannot *strictly*
                # beat the incumbent finish time (required to commit) or the
                # best sibling candidate seen so far (required to win the
                # op-best race; ties keep the earlier candidate, matching
                # the naive path's strict-< selection).  Skip its DPOS
                # rerun entirely.
                threshold = incumbent
                if best is not None and best[1].finish_time < threshold:
                    threshold = best[1].finish_time
                lower_bound = self._candidate_lower_bound(txn, bounds, cache)
                if lower_bound >= threshold:
                    pruned += 1
                    rnd.candidate(
                        dim, count, "pruned",
                        lower_bound=lower_bound, threshold=threshold,
                    )
                    cache.invalidate(txn.undo())
                    continue
            if executor is not None:
                cache.invalidate(txn.undo())
                survivors.append((dim, count))
                continue
            result = self.dpos.run(working, cost_cache=cache)
            evaluated += 1
            rnd.candidate(dim, count, "rejected", makespan=result.finish_time)
            cache.invalidate(txn.undo())
            if best is None or result.finish_time < best[1].finish_time:
                best = (txn.decision, result)
        if executor is not None and survivors:
            futures = [
                executor.submit(
                    _evaluate_candidate, self.dpos, working, op.name, dim, count
                )
                for dim, count in survivors
            ]
            for (dim, count), future in zip(survivors, futures):
                result = future.result()
                if result is None:
                    rnd.candidate(dim, count, "infeasible")
                    continue
                evaluated += 1
                rnd.candidate(
                    dim, count, "rejected", makespan=result.finish_time
                )
                if best is None or result.finish_time < best[1].finish_time:
                    decision = SplitDecision(
                        op_name=op.name, dim=dim, num_splits=count
                    )
                    best = (decision, result)
        return _OpOutcome(best, evaluated, pruned, attempted)

    def _candidate_lower_bound(
        self, txn: SplitTransaction, bounds: _SearchBounds, cache: CostCache
    ) -> float:
        """O(split size) lower bound on an applied candidate's finish time.

        Scores only the nodes the split created.  Their down-chains run
        through pre-existing *ancestors*, whose committed ``down`` values
        are still exact (the rewrite leaves their ancestry untouched);
        their up-chains run through pre-existing *descendants*, whose
        ``up`` values are likewise still exact.  Pre-existing nodes are
        never scored directly — an ancestor's ``up`` and a descendant's
        ``down`` are stale after the rewrite.
        """
        down: Dict[str, float] = {}
        up: Dict[str, float] = {}

        def local_down(op: Operation) -> float:
            value = bounds.down.get(op.name)
            if value is None:
                value = down.get(op.name)
            if value is not None:
                return value
            best = 0.0
            for pred in cache.predecessors(op):
                if cache.weight(pred) > 0.0:
                    d = local_down(pred)
                    if d > best:
                        best = d
            value = down[op.name] = best + cache.min_weight(op)
            return value

        def local_up(op: Operation) -> float:
            value = bounds.up.get(op.name)
            if value is None:
                value = up.get(op.name)
            if value is not None:
                return value
            tail = 0.0
            if cache.weight(op) > 0.0:
                for succ in cache.successors(op):
                    u = local_up(succ)
                    if u > tail:
                        tail = u
            value = up[op.name] = tail + cache.min_weight(op)
            return value

        new_nodes: Dict[str, Operation] = {}
        for piece in txn.sub_ops:
            for node in (
                piece, *cache.predecessors(piece), *cache.successors(piece)
            ):
                if node.name not in bounds.down:
                    new_nodes[node.name] = node
        bound = 0.0
        for node in new_nodes.values():
            value = local_down(node) - cache.min_weight(node) + local_up(node)
            if value > bound:
                bound = value
        return bound

    # ------------------------------------------------------------------
    def _package(
        self,
        graph: Graph,
        best: DPOSResult,
        split_list: List[SplitDecision],
        evaluated: int,
        rejected: int,
        pruned: int,
        cache: Optional[CostCache] = None,
        search=None,
    ) -> OSDPOSResult:
        if search is not None:
            search.finalize(best)
        strategy = Strategy(
            placement=dict(best.strategy.placement),
            order=list(best.strategy.order),
            split_list=split_list,
            estimated_time=best.finish_time,
            label="os-dpos" if split_list else "dpos",
        )
        metrics = MetricsSnapshot({
            "search.candidates_evaluated": evaluated,
            "search.splits_rejected": rejected,
            "search.candidates_pruned": pruned,
            "search.splits_committed": len(split_list),
        })
        if cache is not None:
            for key, value in cache.stats().items():
                metrics[f"search.cache.{key}"] = value
        return OSDPOSResult(
            graph=graph,
            strategy=strategy,
            finish_time=best.finish_time,
            dpos_result=best,
            metrics=metrics,
        )

    # ------------------------------------------------------------------
    def _placement_critical_path(
        self,
        graph: Graph,
        result: DPOSResult,
        cache: Optional[CostCache] = None,
        engine: Optional[DPOS] = None,
    ) -> List[str]:
        """Critical path under the committed placement (Alg. 2 lines 4-5).

        Ranks are recomputed with the *assigned-device* computation time
        and the *assigned-pair* communication time, then the path is
        sorted by decreasing computation time on the assigned device.
        ``engine`` overrides whose cost models are consulted (the coarse
        path passes its super-op-aware DPOS).
        """
        placement = result.strategy.placement
        dpos = engine if engine is not None else self.dpos

        if cache is not None:
            def weight(op: Operation) -> float:
                return cache.time(op, placement[op.name])

            def comm(src: Operation, dst: Operation) -> float:
                return cache.pair_time(
                    placement[src.name],
                    placement[dst.name],
                    cache.edge_bytes(src, dst),
                )

            ranks = compute_ranks(
                graph, weight, comm,
                order=cache.topological_order(),
                successors=cache.successors,
            )
            path = critical_path(graph, ranks, successors=cache.successors)
        else:
            computation = dpos.computation
            communication = dpos.communication

            def weight(op: Operation) -> float:
                return computation.time(op, placement[op.name])

            def comm(src: Operation, dst: Operation) -> float:
                return communication.time(
                    placement[src.name],
                    placement[dst.name],
                    graph.edge_bytes(src, dst),
                )

            ranks = compute_ranks(graph, weight, comm)
            path = critical_path(graph, ranks)
        return [
            op.name
            for op in sorted(path, key=lambda o: -weight(o))
            if weight(op) > 0.0
        ]
