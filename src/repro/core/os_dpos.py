"""OS-DPOS — Operation Splitting DPOS (Alg. 2).

Runs DPOS for an initial schedule, recomputes the critical path under
that placement, then walks the critical path in decreasing order of
computation time, trying to split each operation along each of its
parallelizable dimensions with each candidate split count.  A split is
committed only if the best resulting DPOS finish time beats the current
one; the first non-improving operation stops the search (the paper's
early exit).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph import Graph, Operation
from ..graph.rewrite import SplitDecision, SplitError, split_operation
from .dpos import DPOS, DPOSResult
from .ranks import compute_ranks, critical_path
from .strategy import Strategy


@dataclass
class OSDPOSResult:
    """Output of Alg. 2: rewritten graph plus the full strategy."""

    graph: Graph
    strategy: Strategy
    finish_time: float
    dpos_result: DPOSResult
    candidates_evaluated: int = 0
    splits_rejected: int = 0

    @property
    def split_list(self) -> List[SplitDecision]:
        return self.strategy.split_list


def default_split_counts(num_devices: int) -> List[int]:
    """Candidate split numbers: 2, 4, ..., up to the device count.

    The paper tries split numbers up to the number of GPUs; powers of two
    keep the candidate space small without losing the interesting points
    on an even-sized cluster.
    """
    counts = sorted({n for n in (2, 4, 8, num_devices) if 2 <= n <= num_devices})
    return counts


class OSDPOS:
    """Alg. 2, built on a configured :class:`DPOS` instance.

    Args:
        dpos: The placement/ordering engine (carries cluster+cost models).
        split_counts: Candidate split numbers; default
            :func:`default_split_counts` of the cluster size.
        max_candidate_ops: Cap on how many critical-path ops are examined
            (None = the full path, as in the paper; the early exit usually
            stops far sooner).
    """

    def __init__(
        self,
        dpos: DPOS,
        split_counts: Optional[Sequence[int]] = None,
        max_candidate_ops: Optional[int] = None,
    ) -> None:
        self.dpos = dpos
        num_devices = len(dpos.topology.devices)
        self.split_counts = (
            list(split_counts)
            if split_counts is not None
            else default_split_counts(num_devices)
        )
        self.max_candidate_ops = max_candidate_ops

    # ------------------------------------------------------------------
    def run(self, graph: Graph) -> OSDPOSResult:
        """Compute split list, placement, and order for ``graph``.

        ``graph`` itself is never mutated; committed splits are applied to
        successive copies.
        """
        current_graph = graph.copy()
        best = self.dpos.run(current_graph)
        split_list: List[SplitDecision] = []
        candidates_evaluated = 0
        splits_rejected = 0

        if self.split_counts:
            cp_ops = self._placement_critical_path(current_graph, best)
            if self.max_candidate_ops is not None:
                cp_ops = cp_ops[: self.max_candidate_ops]
            for op_name in cp_ops:
                if op_name not in current_graph:
                    continue  # consumed by an earlier committed split
                op = current_graph.get_op(op_name)
                if not op.is_splittable:
                    continue
                outcome = self._best_split_for(current_graph, op)
                if outcome is None:
                    continue
                decision, candidate_graph, candidate_result, tried = outcome
                candidates_evaluated += tried
                if candidate_result.finish_time < best.finish_time:
                    split_list.append(decision)
                    current_graph = candidate_graph
                    best = candidate_result
                else:
                    splits_rejected += 1
                    break  # paper: stop at the first non-improving CP op

        strategy = Strategy(
            placement=dict(best.strategy.placement),
            order=list(best.strategy.order),
            split_list=split_list,
            estimated_time=best.finish_time,
            label="os-dpos" if split_list else "dpos",
        )
        return OSDPOSResult(
            graph=current_graph,
            strategy=strategy,
            finish_time=best.finish_time,
            dpos_result=best,
            candidates_evaluated=candidates_evaluated,
            splits_rejected=splits_rejected,
        )

    # ------------------------------------------------------------------
    def _placement_critical_path(
        self, graph: Graph, result: DPOSResult
    ) -> List[str]:
        """Critical path under the committed placement (Alg. 2 lines 4-5).

        Ranks are recomputed with the *assigned-device* computation time
        and the *assigned-pair* communication time, then the path is
        sorted by decreasing computation time on the assigned device.
        """
        placement = result.strategy.placement
        computation = self.dpos.computation
        communication = self.dpos.communication

        def weight(op: Operation) -> float:
            return computation.time(op, placement[op.name])

        def comm(src: Operation, dst: Operation) -> float:
            return communication.time(
                placement[src.name],
                placement[dst.name],
                graph.edge_bytes(src, dst),
            )

        ranks = compute_ranks(graph, weight, comm)
        path = critical_path(graph, ranks)
        return [
            op.name
            for op in sorted(path, key=lambda o: -weight(o))
            if weight(op) > 0.0
        ]

    def _best_split_for(
        self, base_graph: Graph, op: Operation
    ) -> Optional[Tuple[SplitDecision, Graph, DPOSResult, int]]:
        """Try every (dimension, split count) for ``op``; keep the best."""
        best: Optional[Tuple[SplitDecision, Graph, DPOSResult]] = None
        tried = 0
        for dim, count in itertools.product(
            sorted(op.split_dims), self.split_counts
        ):
            candidate_graph = base_graph.copy()
            try:
                split_operation(
                    candidate_graph, candidate_graph.get_op(op.name), dim, count
                )
            except SplitError:
                continue  # extent too small for this count, etc.
            result = self.dpos.run(candidate_graph)
            tried += 1
            if best is None or result.finish_time < best[2].finish_time:
                best = (
                    SplitDecision(op_name=op.name, dim=dim, num_splits=count),
                    candidate_graph,
                    result,
                )
        if best is None:
            return None
        return (*best, tried)
