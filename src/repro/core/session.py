"""FastTSession: the transparent entry point (the ``BaseSession`` hook).

In the paper, FastT lives inside TensorFlow's ``BaseSession.__init__``
and ``run``: developers keep their model code and get automatic
deployment.  Here the session takes a model *builder* and a cluster and
does everything else — chooses the input graph (data-parallel replication
when the model fits one GPU, the plain model DAG otherwise), bootstraps
cost models through pre-training, activates strategies with simulated
checkpoint/restart, and then "trains" under the surviving strategy.

>>> from repro import FastTSession
>>> from repro.cluster import single_server
>>> session = FastTSession(my_builder, single_server(4), global_batch=64)
>>> report = session.optimize()
>>> session.training_speed()   # samples/second
"""

from __future__ import annotations

import threading
from typing import List, Optional

from ..cluster import Topology
from ..graph import (
    Graph,
    ModelBuilder,
    build_data_parallel_training_graph,
    build_single_device_training_graph,
    data_parallel_placement,
)
from ..hardware import PerfModel
from ..obs import Observability, get_obs
from ..profiling import StepTrace
from ..sim import ExecutionSimulator, SimulationOOMError
from .calculator import CalculationReport, FastTConfig, StrategyCalculator
from .context import SearchContext, WarmStartSeed
from .order import complete_order
from .placer import model_parallel_placement
from .strategy import Strategy


def fits_on_single_device(
    graph: Graph, topology: Topology, perf_model: Optional[PerfModel] = None
) -> bool:
    """Can the whole training graph run on one GPU without OOM?

    Decides between the data-parallel and model-parallel input graphs
    (Sec. 5.2).  The check actually executes the step on one device with
    memory enforcement, so it accounts for activation liveness, not just
    parameter bytes.
    """
    perf_model = perf_model or PerfModel(topology)
    device = topology.device_names[0]
    placement = {op.name: device for op in graph.ops}
    simulator = ExecutionSimulator(graph, topology, perf_model)
    try:
        simulator.run_step(placement)
    except SimulationOOMError:
        return False
    return True


class FastTSession:
    """Automatic multi-GPU deployment for one training job."""

    def __init__(
        self,
        model_builder: ModelBuilder,
        topology: Topology,
        global_batch: int,
        perf_model: Optional[PerfModel] = None,
        config: Optional[FastTConfig] = None,
        model_name: str = "model",
        obs: Optional[Observability] = None,
    ) -> None:
        self.model_builder = model_builder
        self.topology = topology
        self.global_batch = global_batch
        self.perf_model = perf_model or PerfModel(topology, noise_sigma=0.02)
        self.config = config or FastTConfig()
        self.model_name = model_name
        self.obs = get_obs(obs)

        self.alternative_inputs: list = []
        self.input_graph, self.initial_strategy = self._prepare_input()
        if self.obs.events.enabled:
            self.obs.events.emit(
                "session.input",
                graph=self.input_graph.name,
                strategy=self.initial_strategy.label,
                ops=self.input_graph.num_ops,
                alternatives=len(self.alternative_inputs),
            )
        self._report: Optional[CalculationReport] = None
        self._report_lock = threading.Lock()

    # ------------------------------------------------------------------
    def _prepare_input(self) -> tuple:
        """Choose the input DAG and starting strategy (Sec. 5.2).

        Data parallelism is the starting strategy whenever it is feasible:
        either the whole training graph fits one GPU (the paper's check),
        or — for activation-bound batches — the *replicated* graph still
        executes under its default placement (each tower only holds
        ``batch / N`` of the activations).  Only when even that OOMs do we
        fall back to the plain model DAG with a model-parallel start.
        """
        single = build_single_device_training_graph(
            self.model_builder, self.global_batch, name=f"{self.model_name}_single"
        )
        if len(self.topology.devices) == 1:
            placement = {
                op.name: self.topology.device_names[0] for op in single.ops
            }
            return single, Strategy(placement=placement, label="single-gpu")

        num_devices = len(self.topology.devices)
        dp_feasible = self.global_batch >= num_devices
        if dp_feasible:
            dp_graph, _ = build_data_parallel_training_graph(
                self.model_builder,
                num_replicas=num_devices,
                global_batch=self.global_batch,
                name=f"{self.model_name}_dp",
            )
            dp_placement = data_parallel_placement(
                dp_graph, self.topology.device_names
            )
            if fits_on_single_device(single, self.topology, self.perf_model):
                # The plain model DAG stays on the table as an alternative
                # input: OS-DPOS on it may beat DP using fewer devices
                # (Sec. 5.2: FastT can choose a device subset).
                single_placement = {
                    op.name: self.topology.device_names[0] for op in single.ops
                }
                self.alternative_inputs = [
                    (single, Strategy(placement=single_placement, label="single"))
                ]
                return dp_graph, Strategy(
                    placement=dp_placement, label="data-parallel"
                )
            # Large model: keep DP if its default deployment executes.
            simulator = ExecutionSimulator(
                dp_graph, self.topology, self.perf_model
            )
            try:
                simulator.run_step(dp_placement)
            except SimulationOOMError:
                pass
            else:
                return dp_graph, Strategy(
                    placement=dp_placement, label="data-parallel"
                )
        return single, Strategy(
            placement=model_parallel_placement(single, self.topology),
            label="model-parallel",
        )

    # ------------------------------------------------------------------
    def new_context(
        self,
        obs: Optional[Observability] = None,
        warm_start: Optional[WarmStartSeed] = None,
    ) -> SearchContext:
        """A fresh per-request :class:`SearchContext` for this job.

        The context replicates the session's perf model (same seed, own
        RNG stream) and starts with empty cost models, so N contexts run
        concurrently without sharing any mutable state — and produce the
        same strategies whether they run serially or in parallel.
        """
        return SearchContext.create(
            self.topology,
            perf_model=self.perf_model,
            config=self.config,
            obs=obs if obs is not None else self.obs,
            warm_start=warm_start,
        )

    def optimize(
        self,
        force: bool = False,
        context: Optional[SearchContext] = None,
    ) -> CalculationReport:
        """Run (or return the cached) pre-training stage.

        Without ``context`` this is the legacy single-tenant path: one
        memoized run over the session's own perf model and freshly
        adopted cost models (byte-identical to the pre-context engine).
        With an explicit ``context`` (see :meth:`new_context`) the run
        uses *only* that context's state, is safe to invoke from
        multiple threads on distinct contexts, and always executes —
        repeat-request caching is the strategy store's job
        (:mod:`repro.serve`), not the session's.
        """
        if context is not None:
            report = StrategyCalculator(
                self.input_graph,
                self.initial_strategy,
                alternative_inputs=self.alternative_inputs,
                context=context,
            ).run()
            with self._report_lock:
                if self._report is None:
                    # Adopt the result so session.run()/strategy work
                    # after a context-driven optimize.
                    self._report = report
            return report
        with self._report_lock:
            if self._report is None or force:
                calculator = StrategyCalculator(
                    self.input_graph,
                    self.initial_strategy,
                    self.topology,
                    self.perf_model,
                    config=self.config,
                    alternative_inputs=self.alternative_inputs,
                    obs=self.obs,
                )
                self._report = calculator.run()
            return self._report

    @property
    def strategy(self) -> Strategy:
        return self.optimize().strategy

    @property
    def graph(self) -> Graph:
        """The (possibly rewritten) graph the active strategy deploys."""
        return self.optimize().graph

    # ------------------------------------------------------------------
    def run(self, num_steps: int = 1) -> List[StepTrace]:
        """Normal-training stage: execute steps under the active strategy."""
        report = self.optimize()
        simulator = ExecutionSimulator(
            report.graph, self.topology, self.perf_model, obs=self.obs
        )
        strategy = report.strategy
        traces: List[StepTrace] = []
        for _ in range(num_steps):
            if strategy.order and self.config.enable_order_enforcement:
                order = complete_order(report.graph, strategy.order)
                traces.append(
                    simulator.run_step(
                        strategy.placement, order=order, policy="priority"
                    )
                )
            else:
                traces.append(simulator.run_step(strategy.placement))
        return traces

    def iteration_time(self) -> float:
        """Measured per-iteration time of the active strategy (seconds)."""
        return self.optimize().measured_time

    def training_speed(self) -> float:
        """Samples per second — the paper's headline metric."""
        return self.global_batch / self.iteration_time()
