"""Strategy calculator: FastT's pre-training workflow (Sec. 4).

The calculator owns the loop the paper describes:

1. profile the current strategy for a few iterations and update the
   cost models (a default data/model-parallel strategy is used while the
   models are empty);
2. run OS-DPOS with the updated models; if the estimated iteration time
   beats the active strategy's, checkpoint, rebuild the graph with the
   new partition list, and activate the new placement and order
   (simulated restart with a configurable overhead);
3. after activation, compare *measured* per-iteration time against the
   previous strategy and roll back when the new one is slower;
4. stop once the computation cost model is stable.
"""

from __future__ import annotations

import dataclasses
import time as _time
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.calibration import CalibrationReport

from ..cluster import Topology
from ..costmodel import (
    CommunicationCostModel,
    ComputationCostModel,
    StabilityMonitor,
)
from ..graph import Graph
from ..hardware import PerfModel
from ..obs import MetricsSnapshot, Observability
from ..profiling import Profiler
from ..sim import ExecutionSimulator, SimulationOOMError
from .context import SearchContext
from .dpos import DPOS
from .order import complete_order
from .os_dpos import OSDPOS, SearchOptions
from .placer import apply_placement
from .strategy import Strategy


@dataclass
class FastTConfig:
    """Tunables of the FastT workflow.

    Attributes mirror the paper's system knobs; defaults follow Sec. 4/6.
    The strategy-search knobs live in ``search`` (a
    :class:`~repro.core.os_dpos.SearchOptions`); the old flat spellings
    (``enable_splitting=``, ``split_counts=``, ``max_candidate_ops=``,
    ``naive_search=``, ``search_workers=``) still work but emit
    :class:`DeprecationWarning`.
    """

    profiling_steps: int = 2
    max_rounds: int = 5
    min_rounds: int = 2
    stability_tolerance: float = 0.08
    #: Knobs of the OS-DPOS strategy search (splitting, pruning, workers).
    search: SearchOptions = field(default_factory=SearchOptions)
    memory_fraction: float = 0.9
    restart_overhead_seconds: float = 5.0
    enable_order_enforcement: bool = True
    enable_rollback: bool = True
    measure_steps: int = 3


#: Old flat FastTConfig knob -> SearchOptions field it moved to.
_DEPRECATED_SEARCH_KNOBS = {
    "enable_splitting": "enable_splitting",
    "split_counts": "split_counts",
    "max_candidate_ops": "max_candidate_ops",
    "naive_search": "naive",
    "search_workers": "workers",
}


def _warn_search_knob(old: str, new: str) -> None:
    warnings.warn(
        f"FastTConfig.{old} is deprecated; use "
        f"FastTConfig(search=SearchOptions({new}=...)) / config.search.{new}",
        DeprecationWarning,
        stacklevel=3,
    )


_config_dataclass_init = FastTConfig.__init__


def _config_init(self, *args, **kwargs):
    moved = {}
    for old, new in _DEPRECATED_SEARCH_KNOBS.items():
        if old in kwargs:
            _warn_search_knob(old, new)
            moved[new] = kwargs.pop(old)
    _config_dataclass_init(self, *args, **kwargs)
    for new, value in moved.items():
        setattr(self.search, new, value)


_config_init.__wrapped__ = _config_dataclass_init  # type: ignore[attr-defined]
FastTConfig.__init__ = _config_init  # type: ignore[assignment]


def _deprecated_search_alias(old: str, new: str) -> property:
    def getter(self):
        _warn_search_knob(old, new)
        return getattr(self.search, new)

    def setter(self, value):
        _warn_search_knob(old, new)
        setattr(self.search, new, value)

    return property(getter, setter, doc=f"Deprecated alias of search.{new}.")


for _old, _new in _DEPRECATED_SEARCH_KNOBS.items():
    setattr(FastTConfig, _old, _deprecated_search_alias(_old, _new))
del _old, _new


@dataclass
class RoundRecord:
    """What happened in one pre-training round."""

    round_index: int
    strategy_label: str
    measured_time: Optional[float] = None
    estimated_time: Optional[float] = None
    activated: bool = False
    rolled_back: bool = False
    stable: bool = False


@dataclass
class CalculationReport:
    """Result of the pre-training stage.

    ``metrics`` aggregates the search counters of every OS-DPOS run the
    workflow made (``search.*`` names); the legacy counter attributes are
    read-only views over it.
    """

    strategy: Strategy
    graph: Graph
    rounds: List[RoundRecord] = field(default_factory=list)
    measured_time: float = float("inf")
    initial_measured_time: float = float("inf")
    algorithm_seconds: float = 0.0
    simulated_profiling_seconds: float = 0.0
    simulated_restart_seconds: float = 0.0
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    #: Predicted-vs-realized cost-model residuals for the surviving
    #: strategy; populated only when provenance recording is enabled.
    calibration: Optional["CalibrationReport"] = None

    @property
    def candidates_evaluated(self) -> int:
        """View of ``metrics["search.candidates_evaluated"]``."""
        return int(self.metrics.get("search.candidates_evaluated", 0))

    @property
    def splits_rejected(self) -> int:
        """View of ``metrics["search.splits_rejected"]`` (rejected by
        simulation: the candidate's DPOS makespan did not beat the
        incumbent)."""
        return int(self.metrics.get("search.splits_rejected", 0))

    @property
    def candidates_pruned(self) -> int:
        """View of ``metrics["search.candidates_pruned"]`` (pruned by
        the lower bound: no DPOS rerun was needed to discard them)."""
        return int(self.metrics.get("search.candidates_pruned", 0))

    @property
    def total_search_seconds(self) -> float:
        """Wall+simulated time of the whole search (the paper's Table 4)."""
        return (
            self.algorithm_seconds
            + self.simulated_profiling_seconds
            + self.simulated_restart_seconds
        )


@dataclass
class _RunState:
    """State of one ``run()`` invocation (never shared across calls)."""

    #: Surviving ``(graph, default strategy)`` alternatives; infeasible
    #: ones are dropped after their seed-profiling step.
    alternatives: List[Tuple[Graph, Strategy]]
    stability: StabilityMonitor
    alternatives_profiled: bool = False


class StrategyCalculator:
    """Drives the pre-training loop for one training job.

    All mutable per-request state — cost models, perf-model RNG,
    observability sinks, calibration predictions — lives on a
    :class:`~repro.core.context.SearchContext`; pass one explicitly (the
    multi-tenant path, see :mod:`repro.serve`) or let the constructor
    adopt the given ``topology``/``perf_model``/``config``/``obs`` into
    a fresh one (the legacy path, byte-identical to the pre-context
    engine).  One calculator serves one request; concurrent requests
    each build their own calculator over their own context.
    """

    def __init__(
        self,
        input_graph: Graph,
        initial_strategy: Strategy,
        topology: Optional[Topology] = None,
        perf_model: Optional[PerfModel] = None,
        config: Optional[FastTConfig] = None,
        alternative_inputs: Optional[List] = None,
        obs: Optional[Observability] = None,
        context: Optional[SearchContext] = None,
    ) -> None:
        """``alternative_inputs`` is a list of ``(graph, default strategy)``
        pairs the calculator may deploy instead of ``input_graph`` — e.g.
        the plain model DAG next to the data-parallel replication, which is
        how FastT can end up using only a subset of the devices (Sec. 5.2:
        "FastT may not use all the input devices").  Each alternative is
        profiled once under its default strategy to seed the cost models,
        then competes in every OS-DPOS round on estimated finish time.
        """
        if context is None:
            if topology is None or perf_model is None:
                raise TypeError(
                    "StrategyCalculator needs either a context= or both "
                    "topology= and perf_model="
                )
            # Pair classes come from the topology's routed link kinds
            # (the generalization of the old intra/inter split), the
            # computation model learns heterogeneous device speeds
            # through the relative compute scales, and the communication
            # model prices unprofiled pairs from the topology's route
            # times instead of zero.  Bound methods pickle with their
            # instance, which the search_workers process pool requires.
            context = SearchContext.adopt(
                topology, perf_model, config or FastTConfig(), obs
            )
        elif topology is not None or perf_model is not None:
            raise TypeError(
                "pass either context= or topology=/perf_model=, not both"
            )
        self.context = context
        self.input_graph = input_graph
        self.alternative_inputs = list(alternative_inputs or [])

        # The initial strategy is normalized into a private copy; the
        # caller's Strategy object is never written (two requests may
        # share one).
        self.initial_strategy = dataclasses.replace(
            initial_strategy,
            placement=apply_placement(
                input_graph, initial_strategy.placement, self.topology
            ),
        )

    # -- context views (the request-local collaborators) ----------------
    @property
    def topology(self) -> Topology:
        return self.context.topology

    @property
    def perf_model(self) -> PerfModel:
        return self.context.perf_model

    @property
    def config(self) -> FastTConfig:
        return self.context.config

    @property
    def obs(self) -> Observability:
        return self.context.obs

    @property
    def computation(self) -> ComputationCostModel:
        return self.context.computation

    @property
    def communication(self) -> CommunicationCostModel:
        return self.context.communication

    # ------------------------------------------------------------------
    def _profiler_for(self, graph: Graph) -> Profiler:
        simulator = ExecutionSimulator(
            graph, self.topology, self.perf_model, obs=self.obs
        )
        return Profiler(simulator, self.computation, self.communication)

    def _profile(self, graph: Graph, strategy: Strategy, steps: int):
        profiler = self._profiler_for(graph)
        with self.obs.tracer.span(
            "calculator.profile",
            cat="calculator",
            args={"graph": graph.name, "steps": steps},
        ):
            if strategy.order and self.config.enable_order_enforcement:
                order = complete_order(graph, strategy.order)
                return profiler.profile(
                    strategy.placement, order=order, policy="priority",
                    num_steps=steps,
                )
            return profiler.profile(strategy.placement, num_steps=steps)

    def _profile_alternatives(
        self,
        report: "CalculationReport",
        best: Optional[tuple],
        state: _RunState,
    ) -> Optional[tuple]:
        """Seed the cost models with one step of each alternative graph.

        An alternative's *measured* time also competes for the final
        strategy — this is how FastT can end up deploying the plain model
        DAG on a subset of the devices when replication only adds
        synchronization cost.  Returns the updated best-measured tuple.
        """
        if state.alternatives_profiled:
            return best
        state.alternatives_profiled = True
        surviving = []
        for graph, strategy in state.alternatives:
            try:
                result = self._profile(graph, strategy, 1)
            except SimulationOOMError:
                continue  # infeasible alternative: drop it
            report.simulated_profiling_seconds += sum(
                t.makespan for t in result.traces
            )
            measured = result.mean_iteration_time
            if best is None or measured < best[2]:
                best = (strategy, graph, measured)
            surviving.append((graph, strategy))
        state.alternatives = surviving
        return best

    def _compute_strategy(
        self, report: "CalculationReport", state: _RunState
    ) -> tuple:
        """OS-DPOS over every candidate input graph; keep the best estimate.

        Returns ``(strategy, rewritten graph)`` and accumulates the
        search's candidate counters onto ``report``.  When the context
        carries a :class:`~repro.core.context.WarmStartSeed`, the
        primary input graph's search replays the seed's partition list
        instead of walking the critical path cold.
        """
        dpos = DPOS(
            self.topology,
            self.computation,
            self.communication,
            memory_fraction=self.config.memory_fraction,
            obs=self.obs,
        )
        search = self.config.search
        candidates = [self.input_graph] + [g for g, _ in state.alternatives]
        best: Optional[tuple] = None
        for graph in candidates:
            if search.enable_splitting:
                warm = (
                    self.context.warm_start
                    if graph is self.input_graph
                    else None
                )
                result = OSDPOS(dpos, options=search, obs=self.obs).run(
                    graph, warm_start=warm
                )
                strategy, rewritten = result.strategy, result.graph
                for key, value in result.metrics.items():
                    report.metrics[key] = report.metrics.get(key, 0) + value
            else:
                dpos_result = dpos.run(graph.copy())
                self.obs.provenance.record_dpos(graph.name, dpos_result)
                strategy, rewritten = dpos_result.strategy, graph
            estimate = strategy.estimated_time
            if best is None or (
                estimate is not None
                and (best[0] is None or estimate < best[0])
            ):
                best = (estimate, strategy, rewritten)
        assert best is not None
        strategy, rewritten = best[1], best[2]
        if self.obs.provenance.enabled:
            # Calibration pillar: freeze what the cost models predicted
            # for this strategy *now*, at decision time, so the residuals
            # measure the models the search actually planned with.
            from ..obs.calibration import capture_predictions

            self.context.predictions[id(strategy)] = capture_predictions(
                rewritten,
                strategy.placement,
                self.computation,
                self.communication,
                pair_class=self.topology.pair_class,
            )
        return strategy, rewritten

    # ------------------------------------------------------------------
    def run(self) -> CalculationReport:
        """Execute the pre-training stage; returns the surviving strategy."""
        with self.obs.tracer.span(
            "calculator.run",
            cat="calculator",
            args={
                "graph": self.input_graph.name,
                "max_rounds": self.config.max_rounds,
            },
        ):
            report = self._run_rounds()
        if self.obs.enabled:
            metrics = self.obs.metrics
            metrics.counter("calculator.rounds").inc(len(report.rounds))
            metrics.counter("calculator.activations").inc(
                sum(1 for r in report.rounds if r.activated)
            )
            metrics.counter("calculator.rollbacks").inc(
                sum(1 for r in report.rounds if r.rolled_back)
            )
            metrics.timer("calculator.algorithm").add(report.algorithm_seconds)
            metrics.timer("calculator.simulated_profiling").add(
                report.simulated_profiling_seconds
            )
            metrics.gauge("calculator.measured_time").set(report.measured_time)
            # search.* totals already reach the registry via OSDPOS.run();
            # costmodel.stability.* via the StabilityMonitor's own hook.
            if report.calibration is not None:
                for key, value in report.calibration.metrics().items():
                    metrics.gauge(key).set(value)
        return report

    def _run_rounds(self) -> CalculationReport:
        config = self.config
        tracer = self.obs.tracer
        events = self.obs.events
        state = _RunState(
            alternatives=list(self.alternative_inputs),
            stability=self.context.stability_monitor(),
        )
        current_strategy = self.initial_strategy
        current_graph = self.input_graph
        report = CalculationReport(strategy=current_strategy, graph=current_graph)

        previous: Optional[tuple] = None  # (strategy, graph, measured)
        best: Optional[tuple] = None      # best-measured so far
        current_measured: Optional[float] = None

        for round_index in range(config.max_rounds):
            tracer.instant(
                f"round:{round_index}",
                cat="calculator",
                args={"strategy": current_strategy.label},
            )
            if events.enabled:
                events.emit(
                    "round.start",
                    round=round_index,
                    strategy=current_strategy.label,
                    best=best[2] if best else None,
                )
            record = RoundRecord(
                round_index=round_index,
                strategy_label=current_strategy.label,
                estimated_time=current_strategy.estimated_time,
            )
            profile_started = _time.perf_counter()
            try:
                result = self._profile(
                    current_graph, current_strategy, config.profiling_steps
                )
                current_measured = result.mean_iteration_time
                report.simulated_profiling_seconds += sum(
                    t.makespan for t in result.traces
                )
            except SimulationOOMError:
                current_measured = None
            record.measured_time = current_measured
            if events.enabled:
                events.emit(
                    "phase",
                    name="profile",
                    round=round_index,
                    seconds=_time.perf_counter() - profile_started,
                    measured=current_measured,
                )

            if round_index == 0 and current_measured is not None:
                report.initial_measured_time = current_measured
            if current_measured is not None and (
                best is None or current_measured < best[2]
            ):
                best = (current_strategy, current_graph, current_measured)

            # Rollback: the paper reverts when the activated strategy's
            # measured per-iteration time exceeds the previous one's.
            if (
                config.enable_rollback
                and previous is not None
                and previous[2] is not None
                and (
                    current_measured is None
                    or current_measured > previous[2]
                )
            ):
                current_strategy, current_graph, current_measured = previous
                previous = None
                record.rolled_back = True
                tracer.instant(
                    f"rollback:round{round_index}",
                    cat="calculator",
                    args={"to": current_strategy.label},
                )
                if events.enabled:
                    events.emit(
                        "round.rollback",
                        round=round_index,
                        to=current_strategy.label,
                    )
                    events.emit(
                        "round.finish",
                        round=round_index,
                        verdict="rolled-back",
                        best=best[2] if best else None,
                    )
                report.simulated_restart_seconds += config.restart_overhead_seconds
                report.rounds.append(record)
                continue

            best = self._profile_alternatives(report, best, state)

            record.stable = state.stability.update(self.computation.snapshot())
            if record.stable and round_index + 1 >= config.min_rounds:
                report.rounds.append(record)
                if events.enabled:
                    events.emit(
                        "round.finish",
                        round=round_index,
                        verdict="stable",
                        best=best[2] if best else None,
                    )
                break

            started = _time.perf_counter()
            with tracer.span(
                "calculator.search",
                cat="calculator",
                args={"round": round_index},
            ):
                candidate, candidate_graph = self._compute_strategy(
                    report, state
                )
            search_seconds = _time.perf_counter() - started
            report.algorithm_seconds += search_seconds
            if events.enabled:
                events.emit(
                    "phase",
                    name="search",
                    round=round_index,
                    seconds=search_seconds,
                )

            should_activate = (
                candidate.estimated_time is not None
                and (
                    current_strategy.estimated_time is None
                    or candidate.estimated_time < current_strategy.estimated_time
                )
            )
            if should_activate:
                previous = (current_strategy, current_graph, current_measured)
                current_strategy = candidate
                current_graph = candidate_graph
                report.simulated_restart_seconds += config.restart_overhead_seconds
                record.activated = True
                tracer.instant(
                    f"activate:round{round_index}",
                    cat="calculator",
                    args={
                        "label": candidate.label,
                        "estimate": candidate.estimated_time,
                    },
                )
                if events.enabled:
                    events.emit(
                        "round.activate",
                        round=round_index,
                        strategy=candidate.label,
                        estimate=candidate.estimated_time,
                    )
            report.rounds.append(record)
            if events.enabled:
                events.emit(
                    "round.finish",
                    round=round_index,
                    verdict="activated" if record.activated else "kept",
                    best=best[2] if best else None,
                )

        # Final measurement; if a strategy was activated but never
        # validated (the loop budget ran out first), the rollback rule
        # still applies — FastT keeps whatever measured fastest.
        measure_started = _time.perf_counter()
        try:
            final = self._profile(
                current_graph, current_strategy, config.measure_steps
            )
            final_measured = final.mean_iteration_time
            report.simulated_profiling_seconds += sum(
                t.makespan for t in final.traces
            )
        except SimulationOOMError:
            final_measured = None
        if events.enabled:
            events.emit(
                "phase",
                name="measure",
                seconds=_time.perf_counter() - measure_started,
                measured=final_measured,
            )
        if final_measured is not None and (
            best is None or final_measured < best[2]
        ):
            best = (current_strategy, current_graph, final_measured)
        if best is None:
            raise SimulationOOMError(
                self.topology.device_names[0], 0, 0
            )
        report.strategy, report.graph, report.measured_time = best
        if report.initial_measured_time == float("inf"):
            report.initial_measured_time = report.measured_time
        if self.obs.provenance.enabled:
            report.calibration = self._calibrate(
                report.strategy, report.graph, state.stability
            )
        return report

    def _calibrate(
        self, strategy: Strategy, graph: Graph, stability: StabilityMonitor
    ) -> Optional["CalibrationReport"]:
        """Join decision-time predictions against one realized step.

        Runs one extra simulation step of the surviving strategy with
        cost-model updates disabled, so calibration never perturbs the
        search or the reported timings.
        """
        from ..obs.calibration import calibrate, capture_predictions

        predictions = self.context.predictions.get(id(strategy))
        if predictions is None:
            # The surviving strategy never went through the search (the
            # initial/default strategy won): capture post-hoc against the
            # final models.
            predictions = capture_predictions(
                graph,
                strategy.placement,
                self.computation,
                self.communication,
                pair_class=self.topology.pair_class,
            )
        profiler = self._profiler_for(graph)
        try:
            if strategy.order and self.config.enable_order_enforcement:
                order = complete_order(graph, strategy.order)
                result = profiler.profile(
                    strategy.placement, order=order, policy="priority",
                    num_steps=1, update_models=False,
                )
            else:
                result = profiler.profile(
                    strategy.placement, num_steps=1, update_models=False
                )
        except SimulationOOMError:
            return None
        return calibrate(
            predictions,
            result.traces[-1],
            drift=stability.last_drift,
            drift_tolerance=stability.tolerance,
        )
