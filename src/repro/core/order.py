"""Order enforcement (Sec. 6.1): execution order as executor priorities.

The paper patches TensorFlow's C++ executor so ready-queue pops follow
priorities instead of FIFO; the indices of the strategy calculator's
execution-order list *are* the priorities.  Priority scheduling keeps
the dataflow constraints intact (an op only enters the ready queue once
its inputs are available), so any order list yields a valid execution —
exactly why the paper prefers priorities over hard control edges, which
"lose the chance for further optimization".
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..graph import Graph


def priorities_from_order(order: Sequence[str]) -> Dict[str, int]:
    """Priority map: position in the execution-order list (lower first)."""
    return {name: index for index, name in enumerate(order)}


def complete_order(graph: Graph, order: Sequence[str]) -> List[str]:
    """Extend a (possibly partial) order list to cover the whole graph.

    Ops missing from the list are appended in topological order, so the
    executor always has a total priority assignment.
    """
    seen = set()
    result: List[str] = []
    graph_names = {op.name for op in graph.ops}
    for name in order:
        if name in graph_names and name not in seen:
            seen.add(name)
            result.append(name)
    for op in graph.topological_order():
        if op.name not in seen:
            seen.add(op.name)
            result.append(op.name)
    return result
