"""Per-request search state: the :class:`SearchContext`.

Historically every optimize run's mutable state — the profiled cost
models, the stability monitor, the calibration prediction sets, the
perf-model RNG — lived as attributes on :class:`FastTSession` and
:class:`StrategyCalculator`, which made the stack single-tenant: two
concurrent requests through one process would race on the models and
corrupt each other's searches.

The context makes that state explicit and request-local.  Everything a
search mutates hangs off one :class:`SearchContext`:

* the **cost models** (computation/communication) the profiler feeds and
  the search reads;
* the **perf-model RNG** (each context gets a fresh jitter stream seeded
  identically, so N contexts over the same inputs produce byte-identical
  strategies whether they run serially or in parallel);
* the **observability sinks** (tracer/metrics/provenance/event bus);
* the **calibration predictions** captured at decision time;
* an optional **warm-start seed** (:class:`WarmStartSeed`) that lets
  OS-DPOS replay a cached strategy's partition list instead of starting
  cold (see :mod:`repro.serve`).

Graph working copies and :class:`~repro.costmodel.CostCache` instances
were already created per search invocation inside OS-DPOS; the context
is the container for the state that *wasn't*.

Shared, immutable inputs (the topology, the config) are referenced, not
copied — they are never written after construction.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..cluster import Topology
from ..costmodel import (
    CommunicationCostModel,
    ComputationCostModel,
    StabilityMonitor,
)
from ..hardware import PerfModel
from ..obs import Observability, get_obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.rewrite import SplitDecision
    from ..obs.calibration import PredictionSet
    from .calculator import FastTConfig


@dataclass
class WarmStartSeed:
    """A cached strategy to seed OS-DPOS from (Layer 3 of the service).

    Attributes:
        split_list: The cached strategy's partition list, replayed onto
            the new graph through :class:`~repro.graph.SplitTransaction`
            (decisions whose op no longer exists or whose dimension can
            no longer be split are skipped).
        reference_makespan: The cached strategy's estimated makespan on
            *its* graph; the safety valve falls back to a cold search
            when the warm schedule lands above
            ``safety_factor * reference_makespan``.
        source: Where the seed came from (the cached entry's combined
            fingerprint), for events and provenance.
        safety_factor: Tolerated warm/reference makespan ratio before
            the fallback triggers.  The graphs differ (that is the
            point), so this is a coarse guard against replaying a
            strategy onto a graph it no longer fits, not a quality bound.
    """

    split_list: List["SplitDecision"] = field(default_factory=list)
    reference_makespan: Optional[float] = None
    source: str = ""
    safety_factor: float = 1.5


@dataclass
class SearchContext:
    """All mutable state of one optimize request.

    Build one per request with :meth:`create`; hand it to
    :meth:`FastTSession.optimize(context=...)
    <repro.core.session.FastTSession.optimize>` (or
    ``repro.optimize(..., context=...)``).  Contexts are cheap; nothing
    is profiled or searched at construction time.
    """

    topology: Topology
    perf_model: PerfModel
    config: "FastTConfig"
    obs: Observability
    computation: ComputationCostModel
    communication: CommunicationCostModel
    #: Decision-time cost-model predictions per computed strategy
    #: (id(strategy) -> PredictionSet), kept only under provenance.
    predictions: Dict[int, "PredictionSet"] = field(default_factory=dict)
    #: Optional cached-strategy seed consulted by every OS-DPOS run on
    #: the request's primary input graph.
    warm_start: Optional[WarmStartSeed] = None

    @classmethod
    def create(
        cls,
        topology: Topology,
        *,
        perf_model: Optional[PerfModel] = None,
        config: Optional["FastTConfig"] = None,
        obs: Optional[Observability] = None,
        warm_start: Optional[WarmStartSeed] = None,
    ) -> "SearchContext":
        """Build a fresh context: new cost models, new RNG stream.

        ``perf_model`` is used as a *template*: the context gets its own
        instance (same seed, same noise level) so that concurrent
        requests never share a jitter stream.  Cost models start empty,
        exactly as a fresh :class:`StrategyCalculator` used to build
        them.
        """
        from .calculator import FastTConfig

        config = config or FastTConfig()
        if perf_model is None:
            perf_model = PerfModel(topology, noise_sigma=0.02)
        else:
            perf_model = dataclasses.replace(
                perf_model, efficiency=dict(perf_model.efficiency)
            )
        return cls(
            topology=topology,
            perf_model=perf_model,
            config=config,
            obs=get_obs(obs),
            computation=ComputationCostModel(
                device_scale=topology.relative_compute_scales()
            ),
            communication=CommunicationCostModel(
                pair_class=topology.pair_class, topology=topology
            ),
            warm_start=warm_start,
        )

    @classmethod
    def adopt(
        cls,
        topology: Topology,
        perf_model: PerfModel,
        config: "FastTConfig",
        obs: Optional[Observability] = None,
        warm_start: Optional[WarmStartSeed] = None,
    ) -> "SearchContext":
        """Wrap *existing* collaborators without replicating the RNG.

        This is the legacy single-tenant path: the session's own
        perf model keeps its (possibly part-consumed) jitter stream, so
        results stay byte-identical to the pre-context engine.  New
        multi-tenant callers should prefer :meth:`create`.
        """
        return cls(
            topology=topology,
            perf_model=perf_model,
            config=config,
            obs=get_obs(obs),
            computation=ComputationCostModel(
                device_scale=topology.relative_compute_scales()
            ),
            communication=CommunicationCostModel(
                pair_class=topology.pair_class, topology=topology
            ),
            warm_start=warm_start,
        )

    # ------------------------------------------------------------------
    def stability_monitor(self) -> StabilityMonitor:
        """A fresh per-run stability monitor wired to this context's metrics."""
        return StabilityMonitor(
            self.config.stability_tolerance, metrics=self.obs.metrics
        )
