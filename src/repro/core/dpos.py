"""DPOS — Device Placement and Operation Sequencing (Alg. 1).

List scheduling in two phases: operation prioritization by upward rank
(critical-path heuristic) and device selection by earliest finish time
with idle-slot insertion.  Critical-path operations are pinned to
dedicated critical-path devices chosen by average execution time within
memory capacity; all other operations go wherever they finish earliest.
The execution order is the schedule's start-time order, later enforced
by the executor's priority queue.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..cluster import Topology
from ..costmodel import CommunicationCostModel, ComputationCostModel, CostCache
from ..graph import Graph, Operation
from ..obs import Observability, get_obs
from .ranks import compute_ranks, critical_path, max_comm_fn, max_weight_fn
from .strategy import Strategy

_INF = float("inf")


@dataclass
class _Costs:
    """The lookup functions one DPOS run schedules against.

    Either thin wrappers over the graph and cost models (uncached path)
    or memoized lookups from a shared :class:`CostCache` — the values are
    identical, only the work to produce them differs.
    """

    time: Callable[[Operation, str], float]
    predecessors: Callable[[Operation], List[Operation]]
    edge_bytes: Callable[[Operation, Operation], int]
    pair_time: Callable[[str, str, int], float]
    persistent_bytes: Callable[[Operation], int]


@dataclass
class DPOSResult:
    """Output of one DPOS run.

    ``decisions`` (op name -> :class:`~repro.obs.provenance.\
PlacementDecision`) is populated only when the engine's ``obs`` hook has
    provenance recording enabled; it never influences the strategy.
    """

    strategy: Strategy
    finish_time: float
    start_times: Dict[str, float]
    finish_times: Dict[str, float]
    critical_path: List[str]
    ranks: Dict[str, float]
    decisions: Optional[Dict[str, object]] = None

    @property
    def placement(self) -> Dict[str, str]:
        return self.strategy.placement

    @property
    def order(self) -> List[str]:
        return self.strategy.order


class _DeviceSchedule:
    """Sorted busy intervals of one device, with idle-slot insertion."""

    __slots__ = ("starts", "ends")

    def __init__(self) -> None:
        self.starts: List[float] = []
        self.ends: List[float] = []

    def earliest_slot(
        self, ready: float, duration: float, insertion: bool = True
    ) -> float:
        """Earliest start >= ready of an idle slot fitting ``duration``.

        Scans gaps between already-scheduled intervals (the paper's
        insertion policy) and falls back to after the last interval;
        with ``insertion=False`` it only appends after the last interval.
        """
        if not self.starts:
            return ready
        if not insertion:
            return max(ready, self.ends[-1])
        # Start scanning at the first interval that could constrain us.
        i = bisect.bisect_left(self.ends, ready)
        prev_end = ready if i == 0 else max(ready, self.ends[i - 1])
        for j in range(i, len(self.starts)):
            if prev_end + duration <= self.starts[j]:
                return prev_end
            prev_end = max(prev_end, self.ends[j])
        return prev_end

    def insert(self, start: float, duration: float) -> None:
        i = bisect.bisect_left(self.starts, start)
        self.starts.insert(i, start)
        self.ends.insert(i, start + duration)


class DPOS:
    """Alg. 1, parameterized by cluster and cost models.

    Args:
        topology: Devices and links to place onto.
        computation: Profiled computation cost model.
        communication: Profiled communication cost model.
        memory_fraction: Fraction of device memory the planner may fill
            (headroom for workspace/fragmentation, as in practice).
        obs: Optional :class:`~repro.obs.Observability` hook; defaults to
            the shared no-op.
    """

    def __init__(
        self,
        topology: Topology,
        computation: ComputationCostModel,
        communication: CommunicationCostModel,
        *,
        memory_fraction: float = 0.9,
        insertion_scheduling: bool = True,
        obs: Optional[Observability] = None,
    ) -> None:
        if not 0 < memory_fraction <= 1:
            raise ValueError("memory_fraction must be in (0, 1]")
        self.topology = topology
        self.computation = computation
        self.communication = communication
        self.obs = get_obs(obs)
        #: When False, operations only ever append after a device's last
        #: interval (no idle-slot insertion) — the ablation of Alg. 1's
        #: insertion policy.
        self.insertion_scheduling = insertion_scheduling
        self.capacities = {
            d.name: int(d.memory_bytes * memory_fraction)
            for d in topology.devices
        }

    # ------------------------------------------------------------------
    def run(
        self, graph: Graph, cost_cache: Optional[CostCache] = None
    ) -> DPOSResult:
        """Compute placement, execution order, and estimated finish time.

        ``cost_cache`` (shared across the candidate evaluations of one
        OS-DPOS search) serves memoized cost and adjacency lookups; the
        result is identical with or without it.
        """
        obs = self.obs
        with obs.tracer.span(
            "search.dpos",
            cat="search",
            args={
                "graph": graph.name,
                "ops": graph.num_ops,
                "cached": cost_cache is not None,
            },
        ):
            result = self._run(graph, cost_cache)
        if obs.enabled:
            obs.metrics.counter("dpos.runs").inc()
            obs.metrics.gauge("dpos.last_finish_time").set(result.finish_time)
        return result

    def search(
        self, graph: Graph, cost_cache: Optional[CostCache] = None
    ) -> DPOSResult:
        """Alias of :meth:`run` — the uniform search entry-point name."""
        return self.run(graph, cost_cache=cost_cache)

    def _run(
        self, graph: Graph, cost_cache: Optional[CostCache]
    ) -> DPOSResult:
        devices = self.topology.device_names
        if cost_cache is not None:
            weight = cost_cache.weight
            comm = cost_cache.edge_comm
            successors = cost_cache.successors
            topo = cost_cache.topological_order()
            costs = _Costs(
                time=cost_cache.time,
                predecessors=cost_cache.predecessors,
                edge_bytes=cost_cache.edge_bytes,
                pair_time=cost_cache.pair_time,
                persistent_bytes=cost_cache.persistent_bytes,
            )
        else:
            weight = max_weight_fn(self.computation, devices)
            comm = max_comm_fn(graph, self.communication, devices)
            successors = graph.successors
            topo = graph.topological_order(canonical=True)
            costs = _Costs(
                time=self.computation.time,
                predecessors=graph.predecessors,
                edge_bytes=graph.edge_bytes,
                pair_time=self.communication.time,
                persistent_bytes=lambda op: op.persistent_bytes,
            )
        ranks = compute_ranks(
            graph, weight, comm, order=topo, successors=successors
        )
        cp_ops = critical_path(graph, ranks, successors=successors)
        cp_names: Set[str] = {op.name for op in cp_ops}
        # Placement sequence: decreasing rank; among equal ranks, the
        # critical-path op goes first ("the next operation to be placed is
        # always the entry operation in the new critical path"), so a
        # same-rank sibling cannot grab the CP device's next slot; then
        # (canonical) topological index so predecessors precede successors.
        topo_index = {op.name: i for i, op in enumerate(topo)}
        sequence = sorted(
            ranks,
            key=lambda n: (-ranks[n], n not in cp_names, topo_index[n]),
        )

        mem_used: Dict[str, int] = {d: 0 for d in devices}
        schedules: Dict[str, _DeviceSchedule] = {d: _DeviceSchedule() for d in devices}
        placement: Dict[str, str] = {}
        start_times: Dict[str, float] = {}
        finish_times: Dict[str, float] = {}
        group_device: Dict[str, str] = {}

        # Provenance (off by default): journal per-op decisions with the
        # alternatives each selection rule actually compared.  The
        # recording never feeds back into the schedule.
        recording = self.obs.provenance.enabled
        decisions: Optional[Dict[str, object]] = None
        if recording:
            from ..obs.provenance import PlacementAlternative, PlacementDecision

            decisions = {}

        cp_pending: List[Operation] = list(cp_ops)
        cp_placed: Set[str] = set()
        cp_alts: Optional[List] = [] if recording else None
        cp_device = self._select_cp_device(
            cp_pending, cp_placed, devices, mem_used, costs, collect=cp_alts
        )

        events = self.obs.events
        progress_stride = (
            max(1, len(sequence) // 8) if events.enabled else 0
        )
        for seq_index, name in enumerate(sequence):
            if progress_stride and seq_index % progress_stride == 0:
                events.emit(
                    "dpos.progress",
                    graph=graph.name,
                    placed=seq_index,
                    total=len(sequence),
                )
            op = graph.get_op(name)
            need = costs.persistent_bytes(op)
            forced = (
                group_device.get(op.colocation_group)
                if op.colocation_group is not None
                else None
            )
            reason = ""
            alts: Optional[List] = None
            if forced is not None:
                target = forced
                if recording:
                    reason = "colocated"
                    alts = [PlacementAlternative(
                        device=target, chosen=True,
                        note=f"colocation group {op.colocation_group!r}",
                    )]
            elif name in cp_names:
                if mem_used[cp_device] + need > self.capacities[cp_device]:
                    cp_alts = [] if recording else None
                    cp_device = self._select_cp_device(
                        cp_pending, cp_placed, devices, mem_used, costs,
                        exclude={cp_device}, collect=cp_alts,
                    )
                target = cp_device
                if recording:
                    reason = "critical-path"
                    alts = [
                        PlacementAlternative(
                            device=a.device, score=a.score,
                            feasible=a.feasible,
                            chosen=a.device == target, note=a.note,
                        )
                        for a in (cp_alts or [])
                    ]
            else:
                alts = [] if recording else None
                target = self._min_eft_device(
                    op, devices, mem_used, need, placement,
                    finish_times, schedules, costs, collect=alts,
                )
                if recording:
                    reason = "min-eft"
                    for a in alts:  # type: ignore[union-attr]
                        a.chosen = a.device == target
                    if not any(a.feasible for a in alts):  # type: ignore[union-attr]
                        reason = "memory-overflow"
            start = self._schedule_on(
                op, target, placement, finish_times, schedules[target], costs
            )
            duration = costs.time(op, target)
            schedules[target].insert(start, duration)
            placement[name] = target
            start_times[name] = start
            finish_times[name] = start + duration
            mem_used[target] += need
            if op.colocation_group is not None and forced is None:
                group_device[op.colocation_group] = target
            if name in cp_names:
                cp_placed.add(name)
            if recording:
                alts = alts or []
                if not any(a.chosen for a in alts):
                    alts.append(PlacementAlternative(
                        device=target, chosen=True, note="memory fallback",
                    ))
                if reason == "colocated":
                    # A forced op skips scoring; record its realized
                    # finish so every decision carries a scored choice.
                    alts[0].score = start + duration
                    alts[0].start = start
                decisions[name] = PlacementDecision(  # type: ignore[index]
                    op_name=name,
                    device=target,
                    reason=reason,
                    start=start,
                    finish=start + duration,
                    rank=ranks[name],
                    on_critical_path=name in cp_names,
                    alternatives=alts,
                )

        order = sorted(
            start_times, key=lambda n: (start_times[n], -ranks[n], n)
        )
        finish = max(finish_times.values(), default=0.0)
        strategy = Strategy(
            placement=placement,
            order=order,
            estimated_time=finish,
            label="dpos",
        )
        return DPOSResult(
            strategy=strategy,
            finish_time=finish,
            start_times=start_times,
            finish_times=finish_times,
            critical_path=[op.name for op in cp_ops],
            ranks=ranks,
            decisions=decisions,
        )

    # ------------------------------------------------------------------
    def _select_cp_device(
        self,
        cp_pending: Sequence[Operation],
        cp_placed: Set[str],
        devices: Sequence[str],
        mem_used: Dict[str, int],
        costs: _Costs,
        exclude: Optional[Set[str]] = None,
        collect: Optional[List] = None,
    ) -> str:
        """Pick the critical-path device (Alg. 1 line 5).

        For each device, greedily fit as many remaining (unplaced) CP ops
        as memory allows and score by average computation time; the
        smallest average wins, then the larger fitted count, then device
        order.  ``collect`` (provenance recording only) receives one
        :class:`~repro.obs.provenance.PlacementAlternative` per device
        considered, scored by that average.
        """
        if collect is not None:
            from ..obs.provenance import PlacementAlternative
        exclude = exclude or set()
        remaining = [op for op in cp_pending if op.name not in cp_placed]
        best: Optional[Tuple[float, int, int, str]] = None
        for idx, dev in enumerate(devices):
            if dev in exclude:
                continue
            free = self.capacities[dev] - mem_used[dev]
            fitted = 0
            total = 0.0
            acc = 0
            for op in remaining:
                need = costs.persistent_bytes(op)
                if acc + need > free:
                    break
                acc += need
                fitted += 1
                total += costs.time(op, dev)
            if fitted == 0 and remaining:
                if collect is not None:
                    collect.append(PlacementAlternative(
                        device=dev, feasible=False,
                        note="no critical-path op fits in memory",
                    ))
                continue
            avg = total / fitted if fitted else 0.0
            if collect is not None:
                collect.append(PlacementAlternative(
                    device=dev, score=avg,
                    note=f"avg cp-op time over {fitted}/{len(remaining)} fitted",
                ))
            key = (avg, -fitted, idx, dev)
            if best is None or key < best:
                best = key
        if best is None:
            # Every candidate is memory-full: fall back to the device with
            # the most free planning memory.
            fallback = max(
                (d for d in devices if d not in exclude),
                key=lambda d: self.capacities[d] - mem_used[d],
                default=None,
            )
            if fallback is None:
                fallback = max(
                    devices, key=lambda d: self.capacities[d] - mem_used[d]
                )
            return fallback
        return best[3]

    def _min_eft_device(
        self,
        op: Operation,
        devices: Sequence[str],
        mem_used: Dict[str, int],
        need: int,
        placement: Dict[str, str],
        finish_times: Dict[str, float],
        schedules: Dict[str, _DeviceSchedule],
        costs: _Costs,
        collect: Optional[List] = None,
    ) -> str:
        """Alg. 1 lines 12-19: min-EFT device among those with memory.

        ``collect`` (provenance recording only) receives one
        :class:`~repro.obs.provenance.PlacementAlternative` per device,
        scored by the EFT the selection compared.
        """
        if collect is not None:
            from ..obs.provenance import PlacementAlternative
        best_dev: Optional[str] = None
        best_eft = _INF
        feasible = False
        for dev in devices:
            if mem_used[dev] + need > self.capacities[dev]:
                if collect is not None:
                    collect.append(PlacementAlternative(
                        device=dev, feasible=False, note="out of memory",
                    ))
                continue
            feasible = True
            est = self._schedule_on(
                op, dev, placement, finish_times, schedules[dev], costs
            )
            eft = est + costs.time(op, dev)
            if collect is not None:
                collect.append(PlacementAlternative(
                    device=dev, score=eft, start=est,
                ))
            if eft < best_eft:
                best_eft = eft
                best_dev = dev
        if not feasible:
            # Out of planning memory everywhere: overflow to the device
            # with the most remaining room rather than failing the whole
            # strategy computation.
            return max(devices, key=lambda d: self.capacities[d] - mem_used[d])
        assert best_dev is not None
        return best_dev

    def _schedule_on(
        self,
        op: Operation,
        device: str,
        placement: Dict[str, str],
        finish_times: Dict[str, float],
        schedule: _DeviceSchedule,
        costs: _Costs,
    ) -> float:
        """EST of ``op`` on ``device`` given committed predecessors."""
        ready = 0.0
        for pred in costs.predecessors(op):
            pred_dev = placement.get(pred.name)
            if pred_dev is None:
                # Predecessor not yet placed can only happen for zero-rank
                # ties; treat its data as available immediately.
                continue
            arrival = finish_times[pred.name]
            if pred_dev != device:
                arrival += costs.pair_time(
                    pred_dev, device, costs.edge_bytes(pred, op)
                )
            ready = max(ready, arrival)
        duration = costs.time(op, device)
        return schedule.earliest_slot(ready, duration, self.insertion_scheduling)
