"""Strategy: the solution triple FastT outputs (Sec. 3).

A strategy is (i) a partition list of operations to split, (ii) a device
placement for every (sub-)operation, and (iii) an execution order over
all (sub-)operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..graph import Graph
from ..graph.rewrite import SplitDecision, apply_split_list


@dataclass
class Strategy:
    """One deployable strategy.

    Attributes:
        placement: op name -> device name (complete over the rewritten
            graph).
        order: op names in execution order (priorities for the executor's
            order enforcement).
        split_list: The partition list; empty for placement-only
            strategies.
        estimated_time: The strategy calculator's predicted iteration
            time (``FT(o_exit)`` of DPOS), if it produced one.
        label: Human-readable provenance ("data-parallel", "dpos",
            "os-dpos", ...).
    """

    placement: Dict[str, str]
    order: List[str] = field(default_factory=list)
    split_list: List[SplitDecision] = field(default_factory=list)
    estimated_time: Optional[float] = None
    label: str = ""

    def materialize(self, base_graph: Graph) -> Graph:
        """Apply this strategy's partition list to a copy of ``base_graph``.

        Returns the rewritten graph the placement and order refer to.
        """
        graph = base_graph.copy()
        apply_split_list(graph, self.split_list)
        return graph

    def devices_used(self) -> List[str]:
        """Distinct devices the placement touches (FastT may use a subset)."""
        return sorted(set(self.placement.values()))

    def validate_against(self, graph: Graph) -> None:
        """Check the strategy covers exactly the graph's ops."""
        graph_names = {op.name for op in graph.ops}
        missing = graph_names - set(self.placement)
        if missing:
            raise ValueError(
                f"placement misses {len(missing)} ops, e.g. "
                f"{sorted(missing)[:5]}"
            )
        if self.order:
            unknown = set(self.order) - graph_names
            if unknown:
                raise ValueError(
                    f"order references unknown ops, e.g. {sorted(unknown)[:5]}"
                )
