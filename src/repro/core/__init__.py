"""FastT's core: DPOS, OS-DPOS, strategy calculator, transparent session."""

from .calculator import (
    CalculationReport,
    FastTConfig,
    RoundRecord,
    StrategyCalculator,
)
from .context import SearchContext, WarmStartSeed
from .dpos import DPOS, DPOSResult
from .order import complete_order, priorities_from_order
from .os_dpos import OSDPOS, OSDPOSResult, SearchOptions, default_split_counts
from .placer import PlacementError, apply_placement
from .ranks import (
    compute_ranks,
    critical_path,
    max_comm_fn,
    max_weight_fn,
    rank_order,
)
from .session import FastTSession, fits_on_single_device
from .strategy import Strategy

__all__ = [
    "CalculationReport",
    "DPOS",
    "DPOSResult",
    "FastTConfig",
    "FastTSession",
    "OSDPOS",
    "OSDPOSResult",
    "PlacementError",
    "RoundRecord",
    "SearchContext",
    "SearchOptions",
    "Strategy",
    "StrategyCalculator",
    "WarmStartSeed",
    "apply_placement",
    "complete_order",
    "compute_ranks",
    "critical_path",
    "default_split_counts",
    "fits_on_single_device",
    "max_comm_fn",
    "max_weight_fn",
    "priorities_from_order",
    "rank_order",
]
