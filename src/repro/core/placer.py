"""Device placer (Sec. 6.1): applies a placement, checking colocation.

The TensorFlow implementation is 20 LoC that set ``tf.device`` scopes
after verifying co-location constraints; this mirror validates a
computed placement against the graph's colocation groups and snaps any
stragglers onto their group leader's device.
"""

from __future__ import annotations

from typing import Dict, Mapping

from ..cluster import Topology
from ..graph import Graph


class PlacementError(ValueError):
    """Raised for incomplete placements or unknown devices."""


def apply_placement(
    graph: Graph,
    placement: Mapping[str, str],
    topology: Topology,
    strict_colocation: bool = False,
) -> Dict[str, str]:
    """Validate and normalize a placement for execution.

    Every op must be mapped to a known device.  Ops sharing a colocation
    group are forced onto the device of the group's first member; with
    ``strict_colocation`` a mismatch raises instead of being repaired.

    Returns a (possibly repaired) copy of the placement.
    """
    known = set(topology.device_names)
    result: Dict[str, str] = {}
    for op in graph.ops:
        dev = placement.get(op.name)
        if dev is None:
            raise PlacementError(f"placement misses op {op.name!r}")
        if dev not in known:
            raise PlacementError(
                f"op {op.name!r} assigned to unknown device {dev!r}"
            )
        result[op.name] = dev

    for group, members in graph.colocation_groups().items():
        leader_device = result[members[0].name]
        for member in members[1:]:
            if result[member.name] != leader_device:
                if strict_colocation:
                    raise PlacementError(
                        f"colocation group {group!r} split across devices: "
                        f"{members[0].name!r} on {leader_device!r} but "
                        f"{member.name!r} on {result[member.name]!r}"
                    )
                result[member.name] = leader_device
    return result


def model_parallel_placement(graph: Graph, topology: Topology) -> Dict[str, str]:
    """Contiguous FLOPs-balanced stages over the cluster's devices.

    The classic manual model-parallel deployment: walk the graph in
    topological order and cut it into ``|D|`` stages of roughly equal
    FLOPs.  FastT uses this as the starting strategy for models too large
    for one GPU (Sec. 4); it also serves as a comparison baseline.
    Colocation groups are repaired afterwards.
    """
    devices = topology.device_names
    order = graph.topological_order()
    total = sum(op.flops for op in order) or float(len(order))
    uniform = total <= len(order)  # degenerate: no FLOPs info at all
    per_stage = total / len(devices)

    placement: Dict[str, str] = {}
    stage = 0
    accumulated = 0.0
    for op in order:
        weight = 1.0 if uniform else op.flops
        if accumulated + weight > per_stage and stage < len(devices) - 1:
            stage += 1
            accumulated = 0.0
        accumulated += weight
        placement[op.name] = devices[stage]
    return apply_placement(graph, placement, topology)
