"""Upward ranks and critical paths (Sec. 5.1, Operation Prioritization).

``rank_u(o_i) = w_i + max_{o_j in succ(o_i)} (c_ij + rank_u(o_j))``

where ``w_i`` is the op's maximal execution time over devices and
``c_ij`` the maximal transmission time of the tensor(s) from ``o_i`` to
``o_j`` over device pairs.  The rank of an exit op is its ``w``.  Ranks
drive both the placement sequence (decreasing rank) and the critical
path (greedy max-rank chain from the max-rank entry op).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..costmodel import CommunicationCostModel, ComputationCostModel, CostCache
from ..graph import Graph, Operation

#: (op) -> execution-time estimate used as ``w_i``.
WeightFn = Callable[[Operation], float]
#: (src op, dst op) -> communication-time estimate used as ``c_ij``.
CommFn = Callable[[Operation, Operation], float]


def max_weight_fn(
    computation: ComputationCostModel, devices: Sequence[str]
) -> WeightFn:
    """``w_i``: maximal computation time over all candidate devices."""

    def weight(op: Operation) -> float:
        return computation.max_time(op, devices)

    return weight


def max_comm_fn(
    graph: Graph,
    communication: CommunicationCostModel,
    devices: Sequence[str],
) -> CommFn:
    """``c_ij``: maximal transfer time over all distinct device pairs."""
    pairs = [(a, b) for a in devices for b in devices if a != b]

    def comm(src: Operation, dst: Operation) -> float:
        num_bytes = graph.edge_bytes(src, dst)
        return communication.max_time(num_bytes, pairs)

    return comm


def cached_weight_fn(cache: CostCache) -> WeightFn:
    """``w_i`` served from a :class:`~repro.costmodel.CostCache`."""
    return cache.weight


def cached_comm_fn(cache: CostCache) -> CommFn:
    """``c_ij`` served from a :class:`~repro.costmodel.CostCache`."""
    return cache.edge_comm


def compute_ranks(
    graph: Graph,
    weight: WeightFn,
    comm: CommFn,
    order: Optional[Sequence[Operation]] = None,
    successors: Optional[Callable[[Operation], List[Operation]]] = None,
) -> Dict[str, float]:
    """Upward rank of every op, via one reverse-topological sweep.

    ``order`` (any topological order) and ``successors`` may be supplied
    to reuse memoized traversal state; the resulting values are identical
    either way.
    """
    if order is None:
        order = graph.topological_order()
    successors_of = successors if successors is not None else graph.successors
    ranks: Dict[str, float] = {}
    for op in reversed(order):
        succs = successors_of(op)
        if not succs:
            ranks[op.name] = weight(op)
            continue
        best = max(comm(op, succ) + ranks[succ.name] for succ in succs)
        ranks[op.name] = weight(op) + best
    return ranks


def critical_path(
    graph: Graph,
    ranks: Dict[str, float],
    successors: Optional[Callable[[Operation], List[Operation]]] = None,
) -> List[Operation]:
    """The max-rank chain from the max-rank entry op to an exit op.

    This follows the paper: select the entry operation (the highest-rank
    one, which heads the overall critical path), then repeatedly step to
    the successor with the largest rank.  Ties break by op name, so the
    path is a pure function of the graph's content.
    """
    entries = graph.entry_ops()
    if not entries:
        raise ValueError("graph has no entry operations")
    successors_of = successors if successors is not None else graph.successors
    current = max(entries, key=lambda op: (ranks[op.name], op.name))
    path = [current]
    while True:
        succs = successors_of(current)
        if not succs:
            return path
        current = max(succs, key=lambda op: (ranks[op.name], op.name))
        path.append(current)


def rank_order(graph: Graph, ranks: Dict[str, float]) -> List[str]:
    """Op names by decreasing rank — the DPOS placement sequence.

    A parent's rank is >= any child's (weights and comm times are
    non-negative), but equality happens whenever unexplored costs are 0;
    ties therefore break by topological index so that predecessors are
    always placed before their successors (EFT needs predecessor finish
    times).
    """
    topo_index = {op.name: i for i, op in enumerate(graph.topological_order())}
    return sorted(ranks, key=lambda name: (-ranks[name], topo_index[name]))
