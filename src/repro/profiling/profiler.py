"""Profiler: runs training steps and feeds traces into the cost models.

This plays the role of FastT's extended TensorFlow tracer (Sec. 6.1,
Cost Model): it executes a few iterations of the current strategy on the
simulated testbed, then pushes per-op execution times into the
computation cost model and per-transfer times into the communication
regression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Mapping, Optional, Sequence

from ..costmodel import CommunicationCostModel, ComputationCostModel
from ..graph import Graph
from .trace import StepTrace

if TYPE_CHECKING:  # pragma: no cover - break the sim <-> profiling cycle
    from ..sim import ExecutionSimulator


def update_cost_models(
    graph: Graph,
    traces: Sequence[StepTrace],
    computation: ComputationCostModel,
    communication: CommunicationCostModel,
) -> None:
    """Ingest step traces into both cost models."""
    op_index = {op.name: op for op in graph.ops}
    for trace in traces:
        for rec in trace.op_records:
            op = op_index.get(rec.op_name)
            bytes_accessed = op.bytes_accessed if op is not None else 0
            computation.observe(
                rec.op_name, rec.op_type, rec.device, rec.duration, bytes_accessed
            )
        for rec in trace.transfer_records:
            communication.observe(
                rec.src_device, rec.dst_device, rec.num_bytes, rec.duration
            )


@dataclass
class ProfileResult:
    """Traces plus the aggregate the strategy calculator decides on."""

    traces: List[StepTrace]

    @property
    def mean_iteration_time(self) -> float:
        if not self.traces:
            return float("inf")
        return sum(t.makespan for t in self.traces) / len(self.traces)


class Profiler:
    """Profiles a (placement, order) strategy over several iterations."""

    def __init__(
        self,
        simulator: "ExecutionSimulator",
        computation: ComputationCostModel,
        communication: CommunicationCostModel,
    ) -> None:
        self.simulator = simulator
        self.computation = computation
        self.communication = communication

    def profile(
        self,
        placement: Mapping[str, str],
        order: Optional[Sequence[str]] = None,
        policy: str = "fifo",
        num_steps: int = 3,
        update_models: bool = True,
    ) -> ProfileResult:
        """Run ``num_steps`` iterations; optionally update the cost models."""
        traces = [
            self.simulator.run_step(placement, order=order, policy=policy)
            for _ in range(num_steps)
        ]
        if update_models:
            update_cost_models(
                self.simulator.graph, traces, self.computation, self.communication
            )
        return ProfileResult(traces=traces)
