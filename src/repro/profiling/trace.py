"""Step traces: the reproduction's analogue of TensorFlow RunMetadata.

Each simulated training iteration yields a :class:`StepTrace` of per-op
execution records and per-tensor transfer records.  FastT's cost models
are fitted *only* from these traces (Sec. 4, Cost Models), never from
the ground-truth hardware model.

Traces serialize to a versioned JSON document (``StepTrace.save`` /
``StepTrace.load``) so the analysis layer (``repro.obs.analyze``) works
on traces read back from disk, not just on live objects.  Schema v1
carried only start/end times; v2 persists ``queued_at``/``started_at``
per op, the blocking-input edge the simulator recorded, and transfer
queue times.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Version of the ``*.step.json`` serialization.  v1: op records carried
#: only ``started_at``/``finished_at``.  v2: ops persist ``queued_at``
#: (ready-queue entry) and ``blocked_by`` (the input event that made the
#: op ready), transfers persist ``queued_at`` (channel-queue entry) and
#: ``producer`` — everything critical-path extraction needs to be exact.
TRACE_SCHEMA_VERSION = 2


class TraceSchemaError(ValueError):
    """A serialized StepTrace has an unknown or malformed schema."""


@dataclass(frozen=True)
class OpRecord:
    """One kernel execution.

    ``ready`` is the simulated time the op's last input became available
    (it entered the device's ready queue); ``start - ready`` is therefore
    the ready-queue wait the Chrome-trace exporter renders.  ``None`` on
    records produced before waits were tracked.

    ``blocked_by`` names the input event whose arrival made the op ready
    — ``"op:<name>"`` for a same-device producer, or
    ``"transfer:<tensor>|<src>|<dst>"`` for an inter-device copy (``|``
    separators because tensor and device names contain ``:``); ``None``
    for source ops (ready at t=0) or on records produced before blocking
    edges were tracked.  Critical-path extraction follows these edges.
    """

    op_name: str
    op_type: str
    device: str
    start: float
    end: float
    ready: Optional[float] = None
    blocked_by: Optional[str] = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def queued_at(self) -> Optional[float]:
        """Alias of ``ready``: when the op entered the ready queue."""
        return self.ready

    @property
    def started_at(self) -> float:
        """Alias of ``start`` (the serialized field name)."""
        return self.start

    @property
    def finished_at(self) -> float:
        """Alias of ``end`` (the serialized field name)."""
        return self.end

    @property
    def queue_wait(self) -> float:
        """Seconds spent ready-but-not-running (0 when untracked)."""
        if self.ready is None:
            return 0.0
        return max(0.0, self.start - self.ready)

    def to_json(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "op_name": self.op_name,
            "op_type": self.op_type,
            "device": self.device,
            "started_at": self.start,
            "finished_at": self.end,
        }
        if self.ready is not None:
            data["queued_at"] = self.ready
        if self.blocked_by is not None:
            data["blocked_by"] = self.blocked_by
        return data

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "OpRecord":
        return cls(
            op_name=str(data["op_name"]),
            op_type=str(data.get("op_type", "")),
            device=str(data["device"]),
            start=float(data["started_at"]),  # type: ignore[arg-type]
            end=float(data["finished_at"]),  # type: ignore[arg-type]
            ready=(
                float(data["queued_at"])  # type: ignore[arg-type]
                if data.get("queued_at") is not None
                else None
            ),
            blocked_by=(
                str(data["blocked_by"])
                if data.get("blocked_by") is not None
                else None
            ),
        )


@dataclass(frozen=True)
class TransferRecord:
    """One inter-device tensor copy.

    ``channel`` is the topology's shared transfer channel the copy was
    serialized on (empty on records produced before channels were
    tracked); the Chrome-trace exporter groups transfers by it.

    ``queued_at`` is when the copy was requested (its producer finished);
    ``start - queued_at`` is therefore the time spent queued behind other
    copies on the shared channel — the analyzer's congestion signal.
    ``producer`` names the op whose output the tensor is, so the
    critical-path walk can continue past a transfer without the graph.
    """

    tensor_name: str
    src_device: str
    dst_device: str
    num_bytes: int
    start: float
    end: float
    channel: str = ""
    queued_at: Optional[float] = None
    producer: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def channel_wait(self) -> float:
        """Seconds queued behind other copies on the shared channel."""
        if self.queued_at is None:
            return 0.0
        return max(0.0, self.start - self.queued_at)

    def to_json(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "tensor_name": self.tensor_name,
            "src_device": self.src_device,
            "dst_device": self.dst_device,
            "num_bytes": self.num_bytes,
            "started_at": self.start,
            "finished_at": self.end,
            "channel": self.channel,
        }
        if self.queued_at is not None:
            data["queued_at"] = self.queued_at
        if self.producer:
            data["producer"] = self.producer
        return data

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "TransferRecord":
        return cls(
            tensor_name=str(data["tensor_name"]),
            src_device=str(data["src_device"]),
            dst_device=str(data["dst_device"]),
            num_bytes=int(data["num_bytes"]),  # type: ignore[arg-type]
            start=float(data["started_at"]),  # type: ignore[arg-type]
            end=float(data["finished_at"]),  # type: ignore[arg-type]
            channel=str(data.get("channel", "")),
            queued_at=(
                float(data["queued_at"])  # type: ignore[arg-type]
                if data.get("queued_at") is not None
                else None
            ),
            producer=str(data.get("producer", "")),
        )


@dataclass
class StepTrace:
    """All events of one simulated iteration plus summary statistics."""

    op_records: List[OpRecord] = field(default_factory=list)
    transfer_records: List[TransferRecord] = field(default_factory=list)
    makespan: float = 0.0
    peak_memory: Dict[str, int] = field(default_factory=dict)

    def compute_time_by_device(self) -> Dict[str, float]:
        """Total busy kernel time per device (Fig. 5's computation time)."""
        busy: Dict[str, float] = {}
        for rec in self.op_records:
            busy[rec.device] = busy.get(rec.device, 0.0) + rec.duration
        return busy

    def memcpy_time_by_pair(self) -> Dict[Tuple[str, str], float]:
        """Total transfer time per (src, dst) device pair."""
        busy: Dict[Tuple[str, str], float] = {}
        for rec in self.transfer_records:
            key = (rec.src_device, rec.dst_device)
            busy[key] = busy.get(key, 0.0) + rec.duration
        return busy

    @property
    def total_compute_time(self) -> float:
        """Sum of kernel durations across devices."""
        return sum(rec.duration for rec in self.op_records)

    @property
    def total_memcpy_time(self) -> float:
        """Sum of transfer durations across links."""
        return sum(rec.duration for rec in self.transfer_records)

    @property
    def total_queue_wait(self) -> float:
        """Sum of ready-queue waits across ops (0 when untracked)."""
        return sum(rec.queue_wait for rec in self.op_records)

    @property
    def avg_compute_time(self) -> float:
        """Mean per-device busy time over devices that ran anything."""
        busy = self.compute_time_by_device()
        return sum(busy.values()) / len(busy) if busy else 0.0

    def ops_by_device(self) -> Dict[str, int]:
        """Operation count per device (Fig. 4's placement histogram)."""
        counts: Dict[str, int] = {}
        for rec in self.op_records:
            counts[rec.device] = counts.get(rec.device, 0) + 1
        return counts

    def device_names(self) -> List[str]:
        """Every device the trace mentions (records or peak memory)."""
        names = {rec.device for rec in self.op_records}
        for rec in self.transfer_records:
            names.add(rec.src_device)
            names.add(rec.dst_device)
        names.update(self.peak_memory)
        return sorted(names)

    # ------------------------------------------------------------------
    # Versioned serialization (the analyzer's on-disk input format)
    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        """A schema-versioned JSON document of the full trace."""
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "makespan": self.makespan,
            "peak_memory": {k: int(v) for k, v in sorted(self.peak_memory.items())},
            "op_records": [rec.to_json() for rec in self.op_records],
            "transfer_records": [rec.to_json() for rec in self.transfer_records],
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "StepTrace":
        """Rebuild a trace from :meth:`to_json` output.

        Accepts schema 1 (no ``queued_at``/``blocked_by``/``producer``
        keys — the per-record parsers default them) and the current
        schema 2; anything newer or unrecognizable raises
        :class:`TraceSchemaError` instead of deserializing garbage.
        """
        if not isinstance(data, dict) or "op_records" not in data:
            raise TraceSchemaError(
                "serialized StepTrace must be an object with 'op_records'"
            )
        schema = data.get("schema")
        if schema not in (1, TRACE_SCHEMA_VERSION):
            raise TraceSchemaError(
                f"unsupported StepTrace schema {schema!r} "
                f"(this build reads 1..{TRACE_SCHEMA_VERSION})"
            )
        try:
            trace = cls(
                op_records=[
                    OpRecord.from_json(rec)  # type: ignore[arg-type]
                    for rec in data["op_records"]  # type: ignore[union-attr]
                ],
                transfer_records=[
                    TransferRecord.from_json(rec)  # type: ignore[arg-type]
                    for rec in data.get("transfer_records", [])  # type: ignore[union-attr]
                ],
                makespan=float(data.get("makespan", 0.0)),  # type: ignore[arg-type]
                peak_memory={
                    str(k): int(v)  # type: ignore[arg-type]
                    for k, v in dict(data.get("peak_memory", {})).items()  # type: ignore[arg-type]
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceSchemaError(f"malformed StepTrace record: {exc}") from exc
        if not trace.makespan:
            ends = [rec.end for rec in trace.op_records]
            ends.extend(rec.end for rec in trace.transfer_records)
            trace.makespan = max(ends, default=0.0)
        return trace

    def save(self, path: str) -> str:
        """Write the versioned JSON document; returns ``path``."""
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=1)
        return path

    @classmethod
    def load(cls, path: str) -> "StepTrace":
        """Read a trace written by :meth:`save`."""
        try:
            with open(path) as handle:
                data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise TraceSchemaError(f"{path}: invalid JSON: {exc}") from exc
        return cls.from_json(data)
