"""Step traces: the reproduction's analogue of TensorFlow RunMetadata.

Each simulated training iteration yields a :class:`StepTrace` of per-op
execution records and per-tensor transfer records.  FastT's cost models
are fitted *only* from these traces (Sec. 4, Cost Models), never from
the ground-truth hardware model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class OpRecord:
    """One kernel execution.

    ``ready`` is the simulated time the op's last input became available
    (it entered the device's ready queue); ``start - ready`` is therefore
    the ready-queue wait the Chrome-trace exporter renders.  ``None`` on
    records produced before waits were tracked.
    """

    op_name: str
    op_type: str
    device: str
    start: float
    end: float
    ready: Optional[float] = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def queue_wait(self) -> float:
        """Seconds spent ready-but-not-running (0 when untracked)."""
        if self.ready is None:
            return 0.0
        return max(0.0, self.start - self.ready)


@dataclass(frozen=True)
class TransferRecord:
    """One inter-device tensor copy.

    ``channel`` is the topology's shared transfer channel the copy was
    serialized on (empty on records produced before channels were
    tracked); the Chrome-trace exporter groups transfers by it.
    """

    tensor_name: str
    src_device: str
    dst_device: str
    num_bytes: int
    start: float
    end: float
    channel: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class StepTrace:
    """All events of one simulated iteration plus summary statistics."""

    op_records: List[OpRecord] = field(default_factory=list)
    transfer_records: List[TransferRecord] = field(default_factory=list)
    makespan: float = 0.0
    peak_memory: Dict[str, int] = field(default_factory=dict)

    def compute_time_by_device(self) -> Dict[str, float]:
        """Total busy kernel time per device (Fig. 5's computation time)."""
        busy: Dict[str, float] = {}
        for rec in self.op_records:
            busy[rec.device] = busy.get(rec.device, 0.0) + rec.duration
        return busy

    def memcpy_time_by_pair(self) -> Dict[Tuple[str, str], float]:
        """Total transfer time per (src, dst) device pair."""
        busy: Dict[Tuple[str, str], float] = {}
        for rec in self.transfer_records:
            key = (rec.src_device, rec.dst_device)
            busy[key] = busy.get(key, 0.0) + rec.duration
        return busy

    @property
    def total_compute_time(self) -> float:
        """Sum of kernel durations across devices."""
        return sum(rec.duration for rec in self.op_records)

    @property
    def total_memcpy_time(self) -> float:
        """Sum of transfer durations across links."""
        return sum(rec.duration for rec in self.transfer_records)

    @property
    def total_queue_wait(self) -> float:
        """Sum of ready-queue waits across ops (0 when untracked)."""
        return sum(rec.queue_wait for rec in self.op_records)

    @property
    def avg_compute_time(self) -> float:
        """Mean per-device busy time over devices that ran anything."""
        busy = self.compute_time_by_device()
        return sum(busy.values()) / len(busy) if busy else 0.0

    def ops_by_device(self) -> Dict[str, int]:
        """Operation count per device (Fig. 4's placement histogram)."""
        counts: Dict[str, int] = {}
        for rec in self.op_records:
            counts[rec.device] = counts.get(rec.device, 0) + 1
        return counts
