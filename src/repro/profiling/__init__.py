"""Profiling: step traces and cost-model measurement (RunMetadata analogue)."""

from .profiler import ProfileResult, Profiler, update_cost_models
from .trace import (
    TRACE_SCHEMA_VERSION,
    OpRecord,
    StepTrace,
    TraceSchemaError,
    TransferRecord,
)

__all__ = [
    "OpRecord",
    "ProfileResult",
    "Profiler",
    "StepTrace",
    "TRACE_SCHEMA_VERSION",
    "TraceSchemaError",
    "TransferRecord",
    "update_cost_models",
]
