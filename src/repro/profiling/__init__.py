"""Profiling: step traces and cost-model measurement (RunMetadata analogue)."""

from .profiler import ProfileResult, Profiler, update_cost_models
from .trace import OpRecord, StepTrace, TransferRecord

__all__ = [
    "OpRecord",
    "ProfileResult",
    "Profiler",
    "StepTrace",
    "TransferRecord",
    "update_cost_models",
]
