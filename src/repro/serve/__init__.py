"""``repro.serve``: the multi-tenant strategy service.

One process answers many "optimize model M on cluster C" requests
concurrently, each on its own reentrant
:class:`~repro.core.SearchContext`, with a fingerprint-keyed
:class:`StrategyStore` answering repeats outright and seeding
warm-start searches for near-repeats (see :mod:`repro.graph.delta`).

Three ways in:

* **in process** — :func:`submit` (module-level convenience over a lazy
  shared :class:`StrategyService`), or construct your own service;
* **over TCP** — ``python -m repro.serve serve --port 7421`` plus
  :class:`Client`;
* **embedded async** — :func:`serve_forever` inside your own event loop.

>>> import repro.serve as serve
>>> serve.submit("lenet", "pcie:2")["source"]        # doctest: +SKIP
'search'
>>> serve.submit("lenet", "pcie:2")["source"]        # doctest: +SKIP
'cache'
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from .client import Client, ServiceError, ServiceTimeout
from .service import (
    AccessLog,
    METRIC_HELP,
    RequestError,
    ServeTimeout,
    ServiceStats,
    StrategyService,
    new_request_id,
    normalize_request,
    serve_forever,
    serve_metrics_http,
)
from .store import (
    STORE_SCHEMA_VERSION,
    StoredStrategy,
    StoreSchemaError,
    StrategyStore,
    default_store_root,
    request_fingerprint,
)

__all__ = [
    "AccessLog",
    "Client",
    "METRIC_HELP",
    "RequestError",
    "STORE_SCHEMA_VERSION",
    "ServeTimeout",
    "ServiceError",
    "ServiceStats",
    "ServiceTimeout",
    "StoreSchemaError",
    "StoredStrategy",
    "StrategyService",
    "StrategyStore",
    "default_service",
    "default_store_root",
    "new_request_id",
    "normalize_request",
    "request_fingerprint",
    "serve_forever",
    "serve_metrics_http",
    "submit",
]

_default_service: Optional[StrategyService] = None
_default_lock = threading.Lock()


def default_service(**kwargs: object) -> StrategyService:
    """The process-wide shared service (created on first use).

    Keyword arguments are honored only on the call that creates it;
    pass none to just fetch the existing instance.
    """
    global _default_service
    with _default_lock:
        if _default_service is None:
            _default_service = StrategyService(**kwargs)  # type: ignore[arg-type]
        return _default_service


def submit(
    model: str,
    topology: object,
    *,
    global_batch: Optional[int] = None,
    config: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Answer one request through the shared in-process service."""
    request: Dict[str, object] = {"model": model, "topology": topology}
    if global_batch is not None:
        request["global_batch"] = global_batch
    if config is not None:
        request["config"] = config
    return default_service().submit(request)
