"""Fingerprint-keyed strategy store: the service's answer cache.

A :class:`StrategyStore` maps the **combined config fingerprint** of an
optimization problem (graph x cluster x search options — the same
identity the flight recorder stamps into every ``manifest.json``; see
:func:`repro.obs.runs.config_fingerprints`) to the strategy a previous
search produced, so a repeated request is answered without re-running
OS-DPOS at all, and a *near*-repeat (see :mod:`repro.graph.delta`) can
warm-start its search from the cached split list.

Entries live in two tiers:

* an in-memory LRU (``capacity`` entries, least-recently-used evicted);
* a write-through on-disk tier — one ``<key>.json`` per entry under
  ``<runs root>/strategies/``, co-located with the run registry so
  ``REPRO_RUNS_DIR`` relocates both together.  (The registry only
  treats directories *containing a manifest* as runs, so the
  ``strategies/`` subdirectory is invisible to ``runs list``/``gc``.)

Documents are schema-versioned like every persisted artifact in this
repo; a stored entry with an unknown schema is **invalidated on read**
(deleted and treated as a miss) rather than half-parsed.

:func:`request_fingerprint` is the shared digest helper: the experiment
harness' trial cache and the service's request coalescing both hash
their key documents through it, so "same trial" means the same thing
everywhere.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.strategy import Strategy
from ..graph.delta import GraphDelta, diff_signatures
from ..graph.rewrite import SplitDecision
from ..obs.events import NULL_EVENTS, EventBus

#: Version of a stored-strategy document.  Bump on layout changes;
#: unknown versions are deleted on read (a cache regenerates, it does
#: not migrate).
STORE_SCHEMA_VERSION = 1

#: Discriminator value inside each stored document.
STORE_KIND = "repro.strategy"

#: Subdirectory of the runs root holding the on-disk tier.
STORE_DIRNAME = "strategies"


def request_fingerprint(document: object, schema: int) -> str:
    """Stable short digest of a JSON-serializable key document.

    The one hashing convention shared by the harness trial cache, the
    service's request identity, and this store: sha256 over the
    canonical JSON of ``{"schema": ..., "key": ...}``, truncated to 24
    hex chars.  Keeping the byte layout identical to the harness'
    original digest means migrating the harness onto this helper
    preserves every existing cache entry.
    """
    blob = json.dumps({"schema": schema, "key": document}, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


def default_store_root() -> str:
    """``<runs root>/strategies`` — co-located with the run registry."""
    from ..obs.runs import default_runs_dir

    return os.path.join(default_runs_dir(), STORE_DIRNAME)


@dataclass
class StoredStrategy:
    """One cached search result, self-describing enough to re-serve.

    ``key`` is the combined config fingerprint; ``fingerprints`` keeps
    the per-axis hashes (graph/cluster/options) so near-match lookups
    can require "same cluster and options, different graph".
    ``signature`` is the :func:`repro.graph.delta.graph_signature` of
    the *unsplit* input graph — what :meth:`StrategyStore.find_similar`
    diffs against.
    """

    key: str
    fingerprints: Dict[str, str]
    model: str
    global_batch: int
    devices: int
    strategy: Strategy
    makespan: float
    training_speed: float
    signature: Dict[str, str] = field(default_factory=dict)
    run_id: Optional[str] = None
    created_at: float = 0.0

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": STORE_SCHEMA_VERSION,
            "kind": STORE_KIND,
            "key": self.key,
            "fingerprints": dict(self.fingerprints),
            "model": self.model,
            "global_batch": self.global_batch,
            "devices": self.devices,
            "strategy": {
                "placement": dict(self.strategy.placement),
                "order": list(self.strategy.order),
                "split_list": [
                    [d.op_name, d.dim, d.num_splits]
                    for d in self.strategy.split_list
                ],
                "estimated_time": self.strategy.estimated_time,
                "label": self.strategy.label,
            },
            "makespan": self.makespan,
            "training_speed": self.training_speed,
            "signature": dict(self.signature),
            "run_id": self.run_id,
            "created_at": self.created_at,
        }

    @classmethod
    def from_json(cls, data: object) -> "StoredStrategy":
        if not isinstance(data, dict):
            raise StoreSchemaError(f"stored strategy is not an object: {data!r}")
        schema = data.get("schema")
        if schema != STORE_SCHEMA_VERSION or data.get("kind") != STORE_KIND:
            raise StoreSchemaError(
                f"unsupported stored-strategy document (schema={schema!r}, "
                f"kind={data.get('kind')!r}; this build reads schema "
                f"{STORE_SCHEMA_VERSION})"
            )
        try:
            raw = data["strategy"]
            strategy = Strategy(
                placement=dict(raw["placement"]),
                order=list(raw.get("order") or []),
                split_list=[
                    SplitDecision(str(name), int(dim), int(count))
                    for name, dim, count in raw.get("split_list") or []
                ],
                estimated_time=raw.get("estimated_time"),
                label=str(raw.get("label") or ""),
            )
            return cls(
                key=str(data["key"]),
                fingerprints=dict(data.get("fingerprints") or {}),
                model=str(data.get("model") or ""),
                global_batch=int(data.get("global_batch") or 0),
                devices=int(data.get("devices") or 0),
                strategy=strategy,
                makespan=float(data["makespan"]),
                training_speed=float(data.get("training_speed") or 0.0),
                signature=dict(data.get("signature") or {}),
                run_id=data.get("run_id"),
                created_at=float(data.get("created_at") or 0.0),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreSchemaError(f"malformed stored strategy: {exc}") from exc


class StoreSchemaError(ValueError):
    """A persisted strategy document has an unknown or malformed schema."""


class StrategyStore:
    """Two-tier (memory LRU + disk) store of :class:`StoredStrategy`.

    Thread-safe: the service's worker threads put/get concurrently.
    ``events`` (an enabled :class:`~repro.obs.events.EventBus`) receives
    ``serve.evict`` when the LRU spills an entry; disk copies survive
    eviction and repopulate the LRU on the next ``get``.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        capacity: int = 64,
        persist: bool = True,
        events: Optional[EventBus] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.root = root or default_store_root()
        self.capacity = capacity
        self.persist = persist
        self.events = events if events is not None else NULL_EVENTS
        self._lru: "OrderedDict[str, StoredStrategy]" = OrderedDict()
        self._lock = threading.Lock()

    # -- core mapping ---------------------------------------------------
    def get(self, key: str) -> Optional[StoredStrategy]:
        """Entry for a combined fingerprint, or None (LRU then disk)."""
        with self._lock:
            entry = self._lru.get(key)
            if entry is not None:
                self._lru.move_to_end(key)
                return entry
        entry = self._load(key)
        if entry is not None:
            self._admit(entry)
        return entry

    def put(self, entry: StoredStrategy) -> None:
        """Insert (write-through to disk when persistence is on)."""
        if not entry.created_at:
            entry.created_at = time.time()
        if self.persist:
            os.makedirs(self.root, exist_ok=True)
            path = self._path(entry.key)
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "w") as handle:
                json.dump(entry.to_json(), handle, indent=2)
            os.replace(tmp, path)
        self._admit(entry)

    def _admit(self, entry: StoredStrategy) -> None:
        evicted: List[str] = []
        with self._lock:
            self._lru[entry.key] = entry
            self._lru.move_to_end(entry.key)
            while len(self._lru) > self.capacity:
                victim, _ = self._lru.popitem(last=False)
                evicted.append(victim)
        for victim in evicted:
            if self.events.enabled:
                self.events.emit("serve.evict", key=victim, tier="memory")

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def _load(self, key: str) -> Optional[StoredStrategy]:
        if not self.persist:
            return None
        path = self._path(key)
        try:
            with open(path) as handle:
                document = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            self._invalidate(path)
            return None
        try:
            return StoredStrategy.from_json(document)
        except StoreSchemaError:
            # Unknown schema or layout: regenerate, don't migrate.
            self._invalidate(path)
            return None

    def _invalidate(self, path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass
        if self.events.enabled:
            self.events.emit("serve.evict", key=os.path.basename(path),
                             tier="disk", reason="schema-mismatch")

    # -- queries --------------------------------------------------------
    def keys(self) -> List[str]:
        """Every known key: LRU plus any disk-only entries."""
        with self._lock:
            known = set(self._lru)
        if self.persist and os.path.isdir(self.root):
            for name in os.listdir(self.root):
                if name.endswith(".json"):
                    known.add(name[: -len(".json")])
        return sorted(known)

    def __len__(self) -> int:
        return len(self.keys())

    def entries(self) -> List[StoredStrategy]:
        """Every loadable entry (disk-only ones are *not* admitted)."""
        out: List[StoredStrategy] = []
        with self._lock:
            in_memory = dict(self._lru)
        for key in self.keys():
            entry = in_memory.get(key)
            if entry is None:
                entry = self._load(key)
            if entry is not None:
                out.append(entry)
        return out

    def find_similar(
        self,
        signature: Dict[str, str],
        *,
        cluster: Optional[str] = None,
        options: Optional[str] = None,
        max_ratio: Optional[float] = None,
    ) -> Optional[Tuple[StoredStrategy, GraphDelta]]:
        """Best warm-start candidate for a request's graph signature.

        Considers entries whose cluster/options fingerprints match (when
        given — a strategy for a different machine or different search
        knobs is not a valid seed), diffs signatures, keeps candidates
        passing :meth:`GraphDelta.is_warm_startable`, and returns the
        one with the fewest total edits.
        """
        best: Optional[Tuple[StoredStrategy, GraphDelta]] = None
        best_edits = -1
        for entry in self.entries():
            if cluster and entry.fingerprints.get("cluster") != cluster:
                continue
            if options and entry.fingerprints.get("options") != options:
                continue
            if not entry.signature:
                continue
            delta = diff_signatures(entry.signature, signature)
            kwargs = {} if max_ratio is None else {"max_ratio": max_ratio}
            if not delta.is_warm_startable(**kwargs):
                continue
            edits = delta.structural_edits + len(delta.changed)
            if best is None or edits < best_edits:
                best = (entry, delta)
                best_edits = edits
        return best

    def clear_memory(self) -> None:
        """Drop the LRU tier (testing; disk entries survive)."""
        with self._lock:
            self._lru.clear()
