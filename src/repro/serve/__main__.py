"""CLI for the strategy service: ``python -m repro.serve <command>``.

Commands::

    serve   [--host H] [--port P] [--workers N] [--store DIR]
            [--capacity N] [--no-persist] [--metrics-port P]
            [--access-log FILE] [--request-timeout S] [--record-runs]
        Run the TCP service until a client sends shutdown.  Prints
        ``listening on HOST:PORT`` once bound (port 0 picks a free
        port — parse this line to learn which).  ``--metrics-port``
        additionally binds a plain-HTTP listener serving ``GET
        /metrics`` (Prometheus exposition), ``/healthz``, ``/readyz``
        (prints ``metrics on HOST:PORT``).

    submit  MODEL TOPOLOGY [--batch B] [--timeout S] [--port P] [--host H]
        Send one optimize request and print the response JSON.

    top     [--interval S] [--once] [--port P] [--host H]
        Live dashboard over a running service (rates, hit ratio,
        latency quantiles, in-flight).

    stats   [--port P] [--host H]     Print the service's counters.
    status  [--port P] [--host H]     Print the service's status.
    metrics [--port P] [--host H]     Print the Prometheus exposition.
    health  [--port P] [--host H]     Print liveness (exit 0/1).
    ready   [--port P] [--host H]     Print readiness (exit 0/1).
    ping    [--port P] [--host H]     Liveness check (exit 0/1).
    shutdown [--port P] [--host H]    Stop a running service.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from .client import Client, ServiceError
from .service import StrategyService, serve_forever
from .store import StrategyStore

DEFAULT_PORT = 7421


def _add_endpoint(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)


def _client(args: argparse.Namespace) -> Client:
    return Client(args.host, args.port)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="FastT strategy service",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve_cmd = commands.add_parser("serve", help="run the TCP service")
    _add_endpoint(serve_cmd)
    serve_cmd.add_argument("--workers", type=int, default=2)
    serve_cmd.add_argument(
        "--store", default=None,
        help="strategy-store directory (default: <runs root>/strategies)",
    )
    serve_cmd.add_argument("--capacity", type=int, default=64)
    serve_cmd.add_argument(
        "--no-persist", action="store_true",
        help="keep the store in memory only",
    )
    serve_cmd.add_argument(
        "--metrics-port", type=int, default=None, metavar="P",
        help="also bind GET /metrics + /healthz + /readyz on this port "
             "(0 picks a free one; prints 'metrics on HOST:PORT')",
    )
    serve_cmd.add_argument(
        "--access-log", default=None, metavar="FILE",
        help="append one JSON line per request to FILE",
    )
    serve_cmd.add_argument(
        "--request-timeout", type=float, default=None, metavar="S",
        help="default per-request deadline in seconds",
    )
    serve_cmd.add_argument(
        "--record-runs", action="store_true",
        help="record a run-registry manifest (with the originating "
             "request id) per executed search",
    )
    serve_cmd.add_argument(
        "--runs-dir", default=None,
        help="registry root for --record-runs "
             "(default: $REPRO_RUNS_DIR or ~/.repro/runs)",
    )

    submit_cmd = commands.add_parser("submit", help="send one request")
    submit_cmd.add_argument("model")
    submit_cmd.add_argument("topology")
    submit_cmd.add_argument("--batch", type=int, default=None)
    submit_cmd.add_argument(
        "--timeout", type=float, default=None,
        help="per-request deadline in seconds",
    )
    _add_endpoint(submit_cmd)

    top_cmd = commands.add_parser(
        "top", help="live dashboard over a running service"
    )
    top_cmd.add_argument(
        "--interval", type=float, default=2.0,
        help="refresh period in seconds",
    )
    top_cmd.add_argument(
        "--once", action="store_true",
        help="render one frame and exit (no TTY control codes)",
    )
    _add_endpoint(top_cmd)

    for name, help_text in (
        ("stats", "print service counters"),
        ("status", "print service status"),
        ("metrics", "print the Prometheus exposition"),
        ("health", "print liveness"),
        ("ready", "print readiness"),
        ("ping", "liveness check"),
        ("shutdown", "stop a running service"),
    ):
        _add_endpoint(commands.add_parser(name, help=help_text))

    args = parser.parse_args(argv)

    if args.command == "serve":
        store = StrategyStore(
            root=args.store, capacity=args.capacity,
            persist=not args.no_persist,
        )
        service = StrategyService(
            store=store, workers=args.workers,
            request_timeout=args.request_timeout,
            access_log=args.access_log,
            record_runs=args.record_runs,
            runs_root=args.runs_dir,
        )

        def ready(host: str, port: int) -> None:
            print(f"listening on {host}:{port}", flush=True)

        def metrics_ready(host: str, port: int) -> None:
            print(f"metrics on {host}:{port}", flush=True)

        asyncio.run(serve_forever(
            service, args.host, args.port, ready=ready,
            metrics_port=args.metrics_port, metrics_ready=metrics_ready,
        ))
        return 0

    if args.command == "top":
        from .top import run_top

        return run_top(
            args.host, args.port, interval=args.interval, once=args.once
        )

    try:
        with _client(args) as client:
            if args.command == "submit":
                response = client.optimize(
                    args.model, args.topology, global_batch=args.batch,
                    timeout=args.timeout,
                )
            elif args.command == "stats":
                response = client.stats()
            elif args.command == "status":
                response = client.status()
            elif args.command == "metrics":
                sys.stdout.write(client.metrics())
                return 0
            elif args.command == "health":
                response = client.health()
                json.dump(response, sys.stdout, indent=2)
                print()
                return 0 if response.get("healthy") else 1
            elif args.command == "ready":
                response = client.readiness()
                json.dump(response, sys.stdout, indent=2)
                print()
                return 0 if response.get("ready") else 1
            elif args.command == "ping":
                return 0 if client.ping() else 1
            else:
                client.shutdown()
                response = {"status": "ok", "stopping": True}
            json.dump(response, sys.stdout, indent=2)
            print()
    except (ConnectionError, ServiceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
