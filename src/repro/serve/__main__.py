"""CLI for the strategy service: ``python -m repro.serve <command>``.

Commands::

    serve   [--host H] [--port P] [--workers N] [--store DIR]
            [--capacity N] [--no-persist]
        Run the TCP service until a client sends shutdown.  Prints
        ``listening on HOST:PORT`` once bound (port 0 picks a free
        port — parse this line to learn which).

    submit  MODEL TOPOLOGY [--batch B] [--port P] [--host H]
        Send one optimize request and print the response JSON.

    stats   [--port P] [--host H]     Print the service's counters.
    status  [--port P] [--host H]     Print the service's status.
    ping    [--port P] [--host H]     Liveness check (exit 0/1).
    shutdown [--port P] [--host H]    Stop a running service.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from .client import Client, ServiceError
from .service import StrategyService, serve_forever
from .store import StrategyStore

DEFAULT_PORT = 7421


def _add_endpoint(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)


def _client(args: argparse.Namespace) -> Client:
    return Client(args.host, args.port)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="FastT strategy service",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve_cmd = commands.add_parser("serve", help="run the TCP service")
    _add_endpoint(serve_cmd)
    serve_cmd.add_argument("--workers", type=int, default=2)
    serve_cmd.add_argument(
        "--store", default=None,
        help="strategy-store directory (default: <runs root>/strategies)",
    )
    serve_cmd.add_argument("--capacity", type=int, default=64)
    serve_cmd.add_argument(
        "--no-persist", action="store_true",
        help="keep the store in memory only",
    )

    submit_cmd = commands.add_parser("submit", help="send one request")
    submit_cmd.add_argument("model")
    submit_cmd.add_argument("topology")
    submit_cmd.add_argument("--batch", type=int, default=None)
    _add_endpoint(submit_cmd)

    for name, help_text in (
        ("stats", "print service counters"),
        ("status", "print service status"),
        ("ping", "liveness check"),
        ("shutdown", "stop a running service"),
    ):
        _add_endpoint(commands.add_parser(name, help=help_text))

    args = parser.parse_args(argv)

    if args.command == "serve":
        store = StrategyStore(
            root=args.store, capacity=args.capacity,
            persist=not args.no_persist,
        )
        service = StrategyService(store=store, workers=args.workers)

        def ready(host: str, port: int) -> None:
            print(f"listening on {host}:{port}", flush=True)

        asyncio.run(serve_forever(service, args.host, args.port, ready=ready))
        return 0

    try:
        with _client(args) as client:
            if args.command == "submit":
                response = client.optimize(
                    args.model, args.topology, global_batch=args.batch
                )
            elif args.command == "stats":
                response = client.stats()
            elif args.command == "status":
                response = client.status()
            elif args.command == "ping":
                return 0 if client.ping() else 1
            else:
                client.shutdown()
                response = {"status": "ok", "stopping": True}
            json.dump(response, sys.stdout, indent=2)
            print()
    except (ConnectionError, ServiceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
