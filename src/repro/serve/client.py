"""Blocking TCP client for the strategy service.

Speaks the service's one-JSON-document-per-line protocol over a single
persistent connection::

    from repro.serve import Client

    with Client(port=7421) as client:
        response = client.optimize("lenet", "pcie:2")
        print(response["source"], response["makespan"])
        print(client.stats()["stats"]["hits"])

The client is thread-safe (one request at a time over the shared
socket); for concurrent requests use one client per thread — the
*service* interleaves and coalesces them.
"""

from __future__ import annotations

import json
import socket
import threading
import uuid
from typing import Dict, Optional


class ServiceError(RuntimeError):
    """The service answered with ``status: error``."""


class ServiceTimeout(ServiceError, TimeoutError):
    """The service reported the request exceeded its deadline."""


def new_request_id() -> str:
    """Mint a client-side request id (16 hex chars).

    Standalone (not imported from the service module) so the client
    stays importable without pulling in the engine.
    """
    return uuid.uuid4().hex[:16]


class Client:
    """Synchronous connection to one :class:`~repro.serve.StrategyService`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7421, timeout: float = 300.0
    ) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _call(self, message: Dict[str, object]) -> Dict[str, object]:
        with self._lock:
            self._file.write(json.dumps(message).encode() + b"\n")
            self._file.flush()
            line = self._file.readline()
        if not line:
            raise ServiceError("service closed the connection")
        response = json.loads(line)
        if response.get("status") == "error":
            error = response.get("error", "unknown service error")
            if response.get("timeout"):
                raise ServiceTimeout(error)
            raise ServiceError(error)
        return response

    # ------------------------------------------------------------------
    def optimize(
        self,
        model: str,
        topology: object,
        *,
        global_batch: Optional[int] = None,
        config: Optional[Dict[str, object]] = None,
        request_id: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, object]:
        """Request a strategy; returns the service's response document.

        Every request carries a ``request_id`` (minted here when not
        given) that the service threads through its events, logs,
        access log, and — with run recording on — the run manifest, so
        a client can correlate its call with everything the service did
        for it.  ``timeout`` (seconds) sets a per-request deadline; the
        service answers a breach with an error the client raises as
        :class:`ServiceTimeout`.
        """
        request: Dict[str, object] = {
            "model": model,
            "topology": topology,
            "request_id": request_id or new_request_id(),
        }
        if global_batch is not None:
            request["global_batch"] = global_batch
        if config is not None:
            request["config"] = config
        if timeout is not None:
            request["timeout"] = timeout
        return self._call({"op": "optimize", "request": request})

    def stats(self) -> Dict[str, object]:
        return self._call({"op": "stats"})

    def status(self) -> Dict[str, object]:
        return self._call({"op": "status"})

    def health(self) -> Dict[str, object]:
        return self._call({"op": "health"})

    def readiness(self) -> Dict[str, object]:
        return self._call({"op": "ready"})

    def metrics(self) -> str:
        """The service's Prometheus text exposition document."""
        return str(self._call({"op": "metrics"}).get("exposition", ""))

    def ping(self) -> bool:
        return bool(self._call({"op": "ping"}).get("pong"))

    def shutdown(self) -> None:
        """Ask the service to stop accepting work and exit."""
        self._call({"op": "shutdown"})

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
