"""The multi-tenant strategy service.

:class:`StrategyService` answers *optimization requests* — "find a
deployment strategy for model M on cluster C at batch B" — from one
process, concurrently, with three progressively cheaper paths:

1. **Cache hit** — the request's combined config fingerprint matches a
   :class:`~repro.serve.store.StoredStrategy`; answer without searching.
2. **Warm start** — a stored entry for the same cluster/options is a
   small graph edit away (:mod:`repro.graph.delta`); seed OS-DPOS from
   its split list (:class:`~repro.core.WarmStartSeed`) and let the
   engine's safety valve fall back to cold search if the seed misleads.
3. **Cold search** — the full reentrant pipeline on a fresh
   :class:`~repro.core.SearchContext`.

Identical requests *in flight* are **coalesced**: the second caller
blocks on the first's future instead of spawning a duplicate search.

The service core is synchronous and thread-safe (workers are plain
threads; reentrancy comes from per-request contexts).  The asyncio TCP
front-end lives in :func:`serve_forever` / ``python -m repro.serve``;
in-process callers use :meth:`StrategyService.submit` directly.

Every decision is observable: ``serve.request`` / ``serve.hit`` /
``serve.miss`` / ``serve.coalesce`` / ``serve.warm`` /
``serve.complete`` events on the service's bus, and a :meth:`stats`
snapshot (the CI smoke gate's source of truth).
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Tuple

from ..cluster import Topology, topology_from
from ..core.calculator import FastTConfig
from ..core.context import SearchContext, WarmStartSeed
from ..core.os_dpos import SearchOptions
from ..graph.delta import graph_signature
from ..obs.events import EventBus
from ..obs import log as obs_log
from .store import (
    STORE_SCHEMA_VERSION,
    StoredStrategy,
    StrategyStore,
    request_fingerprint,
)

_logger = obs_log.get_logger(__name__)

#: Fields a request's ``config``/``config.search`` override may set.
#: Everything else in FastTConfig is service policy, not tenant input.
_CONFIG_FIELDS = frozenset(
    f for f in FastTConfig.__dataclass_fields__ if f != "search"
)
_SEARCH_FIELDS = frozenset(SearchOptions.__dataclass_fields__)


class RequestError(ValueError):
    """A malformed or unserviceable optimization request."""


def normalize_request(request: Dict[str, object]) -> Dict[str, object]:
    """Canonical JSON document of one request (the coalescing identity).

    Two requests coalesce iff their normalized documents are equal:
    model name, topology (preset string or cluster-spec dict), batch,
    and config overrides, with defaults made explicit where cheap.
    """
    if not isinstance(request, dict):
        raise RequestError(f"request must be an object, got {type(request).__name__}")
    model = request.get("model")
    if not isinstance(model, str) or not model:
        raise RequestError("request needs a model-zoo name under 'model'")
    topology = request.get("topology")
    if isinstance(topology, Topology):
        topology = topology.spec.to_dict()
    if not isinstance(topology, (str, dict)) or not topology:
        raise RequestError(
            "request needs a topology preset string or cluster-spec "
            "dict under 'topology'"
        )
    document: Dict[str, object] = {"model": model, "topology": topology}
    if request.get("global_batch") is not None:
        document["global_batch"] = int(request["global_batch"])  # type: ignore[arg-type]
    config = request.get("config") or {}
    if not isinstance(config, dict):
        raise RequestError("'config' must be an object of FastTConfig overrides")
    overrides: Dict[str, object] = {}
    for key, value in sorted(config.items()):
        if key == "search":
            if not isinstance(value, dict):
                raise RequestError("'config.search' must be an object")
            unknown = set(value) - _SEARCH_FIELDS
            if unknown:
                raise RequestError(
                    f"unknown search option(s): {sorted(unknown)}"
                )
            overrides["search"] = {k: value[k] for k in sorted(value)}
        elif key in _CONFIG_FIELDS:
            overrides[key] = value
        else:
            raise RequestError(f"unknown config option: {key!r}")
    if overrides:
        document["config"] = overrides
    return document


def _build_config(base: FastTConfig, overrides: Dict[str, object]) -> FastTConfig:
    search_overrides = overrides.get("search")
    config = replace(
        base, **{k: v for k, v in overrides.items() if k != "search"}
    )
    if search_overrides:
        config = replace(config, search=replace(config.search, **search_overrides))
    return config


@dataclass
class ServiceStats:
    """Counter snapshot (all monotonic since service start)."""

    requests: int = 0
    hits: int = 0
    misses: int = 0
    coalesced: int = 0
    searches: int = 0
    warm_starts: int = 0
    warm_fallbacks: int = 0
    evictions: int = 0
    errors: int = 0

    def to_json(self) -> Dict[str, int]:
        return dict(self.__dict__)


class StrategyService:
    """Thread-safe strategy server over one :class:`StrategyStore`.

    Args:
        store: Answer cache; defaults to a persistent store under the
            run-registry root.
        config: Service-wide :class:`FastTConfig` baseline; per-request
            ``config`` overrides are applied on top.
        workers: Size of the search worker pool used by the async
            front-end (``submit`` itself runs in the caller's thread).
        events: Event bus receiving ``serve.*`` telemetry; a private
            enabled bus is created when omitted so subscribers (stats
            endpoints, tests) can always attach.
        warm_ratio: Structural-edit ceiling for warm-start matching
            (see :meth:`~repro.graph.delta.GraphDelta.is_warm_startable`).
    """

    def __init__(
        self,
        store: Optional[StrategyStore] = None,
        config: Optional[FastTConfig] = None,
        workers: int = 2,
        events: Optional[EventBus] = None,
        warm_ratio: Optional[float] = None,
    ) -> None:
        self.events = events if events is not None else EventBus()
        self.store = store if store is not None else StrategyStore(
            events=self.events
        )
        if self.store.events is not self.events and not self.store.events.enabled:
            self.store.events = self.events
        self.config = config or FastTConfig()
        self.workers = max(1, int(workers))
        self.warm_ratio = warm_ratio
        self.stats = ServiceStats()
        self._stats_lock = threading.Lock()
        self._inflight: Dict[str, Future] = {}
        self._inflight_lock = threading.Lock()
        self._started = False
        if self.events.enabled:
            self.events.subscribe(self._on_event)

    # -- telemetry ------------------------------------------------------
    def _on_event(self, event) -> None:
        if event.kind == "serve.evict":
            with self._stats_lock:
                self.stats.evictions += 1

    def _bump(self, field: str, amount: int = 1) -> None:
        with self._stats_lock:
            setattr(self.stats, field, getattr(self.stats, field) + amount)

    # -- the three answer paths ----------------------------------------
    def submit(self, request: Dict[str, object]) -> Dict[str, object]:
        """Answer one request (blocking; coalesces with identical peers).

        Returns a JSON-serializable response document with ``source``
        one of ``"cache"``, ``"warm"``, ``"search"`` — or ``"coalesced"``
        wrapping the leader's source.
        """
        document = normalize_request(request)
        request_key = request_fingerprint(document, STORE_SCHEMA_VERSION)
        self._bump("requests")
        future: Future
        leader = False
        with self._inflight_lock:
            existing = self._inflight.get(request_key)
            if existing is None:
                future = Future()
                self._inflight[request_key] = future
                leader = True
            else:
                future = existing
        if not leader:
            self._bump("coalesced")
            if self.events.enabled:
                self.events.emit("serve.coalesce", request=request_key)
            response = dict(future.result())
            response["coalesced"] = True
            return response
        try:
            response = self._answer(document, request_key)
            future.set_result(response)
            return response
        except BaseException as exc:
            self._bump("errors")
            future.set_exception(exc)
            raise
        finally:
            with self._inflight_lock:
                self._inflight.pop(request_key, None)

    def _answer(
        self, document: Dict[str, object], request_key: str
    ) -> Dict[str, object]:
        from ..obs.runs import config_fingerprints

        if self.events.enabled:
            self.events.emit(
                "serve.request", request=request_key,
                model=document["model"],
            )
        config = _build_config(self.config, document.get("config") or {})
        topology = topology_from(document["topology"])
        # The request's problem identity needs the built input graph;
        # session construction (graph building + placement) is cheap
        # next to search and exactly matches what a cold run would do.
        from ..core.session import FastTSession
        from ..models import get_model

        spec = get_model(str(document["model"]))
        batch = int(document.get("global_batch") or spec.global_batch)
        session = FastTSession(
            spec.builder, topology, global_batch=batch,
            config=config, model_name=spec.name,
        )
        fingerprints = config_fingerprints(session.input_graph, topology, config)
        key = fingerprints["combined"]

        cached = self.store.get(key)
        if cached is not None:
            self._bump("hits")
            if self.events.enabled:
                self.events.emit("serve.hit", request=request_key, key=key)
            return self._respond(cached, source="cache", request_key=request_key)

        self._bump("misses")
        if self.events.enabled:
            self.events.emit("serve.miss", request=request_key, key=key)

        signature = graph_signature(session.input_graph)
        warm_start, warm_source = self._warm_seed(signature, fingerprints, batch)
        context = session.new_context(warm_start=warm_start)
        self._bump("searches")
        if warm_start is not None:
            self._bump("warm_starts")
            if self.events.enabled:
                self.events.emit(
                    "serve.warm", request=request_key, key=key,
                    seed=warm_source, splits=len(warm_start.split_list),
                )
        report = session.optimize(context=context)
        fallbacks = int(report.metrics.get("search.warm_fallbacks", 0))
        if fallbacks:
            self._bump("warm_fallbacks")
        entry = StoredStrategy(
            key=key,
            fingerprints=fingerprints,
            model=spec.name,
            global_batch=batch,
            devices=len(topology.devices),
            strategy=report.strategy,
            makespan=report.measured_time,
            training_speed=(
                batch / report.measured_time if report.measured_time else 0.0
            ),
            signature=signature,
        )
        self.store.put(entry)
        source = "warm" if warm_start is not None and not fallbacks else "search"
        if self.events.enabled:
            self.events.emit(
                "serve.complete", request=request_key, key=key,
                source=source, makespan=entry.makespan,
            )
        return self._respond(entry, source=source, request_key=request_key)

    def _warm_seed(
        self,
        signature: Dict[str, str],
        fingerprints: Dict[str, str],
        batch: int,
    ) -> Tuple[Optional[WarmStartSeed], Optional[str]]:
        kwargs = {} if self.warm_ratio is None else {"max_ratio": self.warm_ratio}
        match = self.store.find_similar(
            signature,
            cluster=fingerprints["cluster"],
            options=fingerprints["options"],
            **kwargs,
        )
        if match is None:
            return None, None
        entry, delta = match
        reference = entry.makespan
        if entry.global_batch and batch != entry.global_batch:
            # Linear work-scaling prior keeps the safety valve honest
            # across batch edits (the common warm-start case).
            reference = entry.makespan * (batch / entry.global_batch)
        seed = WarmStartSeed(
            split_list=list(entry.strategy.split_list),
            reference_makespan=reference,
            source=f"store:{entry.key[:12]}",
        )
        _logger.info(
            "warm-start seed %s (%s)", entry.key[:12], delta.summary()
        )
        return seed, entry.key

    def _respond(
        self, entry: StoredStrategy, *, source: str, request_key: str
    ) -> Dict[str, object]:
        return {
            "status": "ok",
            "source": source,
            "request": request_key,
            "key": entry.key,
            "model": entry.model,
            "global_batch": entry.global_batch,
            "devices": entry.devices,
            "makespan": entry.makespan,
            "training_speed": entry.training_speed,
            "strategy": {
                "label": entry.strategy.label,
                "splits": len(entry.strategy.split_list),
                "placement": dict(entry.strategy.placement),
                "order": list(entry.strategy.order),
                "split_list": [
                    [d.op_name, d.dim, d.num_splits]
                    for d in entry.strategy.split_list
                ],
            },
        }

    # -- introspection --------------------------------------------------
    def status(self) -> Dict[str, object]:
        with self._inflight_lock:
            inflight = len(self._inflight)
        return {
            "status": "ok",
            "workers": self.workers,
            "inflight": inflight,
            "store": {
                "root": self.store.root if self.store.persist else None,
                "capacity": self.store.capacity,
                "entries": len(self.store),
            },
        }

    def stats_json(self) -> Dict[str, object]:
        with self._stats_lock:
            return {"status": "ok", "stats": self.stats.to_json()}


# ----------------------------------------------------------------------
# asyncio TCP front-end: one JSON document per line, one back.
# ----------------------------------------------------------------------

async def handle_connection(
    service: StrategyService,
    pool: ThreadPoolExecutor,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    shutdown: asyncio.Event,
) -> None:
    loop = asyncio.get_running_loop()
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            try:
                message = json.loads(line)
                op = message.get("op", "optimize")
                if op == "ping":
                    response: Dict[str, object] = {"status": "ok", "pong": True}
                elif op == "stats":
                    response = service.stats_json()
                elif op == "status":
                    response = service.status()
                elif op == "shutdown":
                    response = {"status": "ok", "stopping": True}
                    shutdown.set()
                elif op == "optimize":
                    response = await loop.run_in_executor(
                        pool, service.submit, message.get("request") or {}
                    )
                else:
                    response = {"status": "error",
                                "error": f"unknown op {op!r}"}
            except RequestError as exc:
                response = {"status": "error", "error": str(exc)}
            except Exception as exc:  # pragma: no cover - defensive
                _logger.exception("request failed")
                response = {"status": "error",
                            "error": f"{type(exc).__name__}: {exc}"}
            writer.write(json.dumps(response).encode() + b"\n")
            await writer.drain()
            if shutdown.is_set():
                break
    finally:
        writer.close()


async def serve_forever(
    service: StrategyService,
    host: str = "127.0.0.1",
    port: int = 0,
    ready: Optional[Callable[[str, int], None]] = None,
) -> None:
    """Run the TCP front-end until a client sends ``{"op": "shutdown"}``.

    ``ready(host, port)`` is invoked once the socket is bound (port 0
    picks a free port; this is how callers learn which).
    """
    shutdown = asyncio.Event()
    pool = ThreadPoolExecutor(
        max_workers=service.workers, thread_name_prefix="repro-serve"
    )
    server = await asyncio.start_server(
        lambda r, w: handle_connection(service, pool, r, w, shutdown),
        host, port,
    )
    bound = server.sockets[0].getsockname()
    _logger.info("serving on %s:%s", bound[0], bound[1])
    if ready is not None:
        ready(bound[0], bound[1])
    async with server:
        await shutdown.wait()
    pool.shutdown(wait=False)
