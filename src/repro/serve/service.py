"""The multi-tenant strategy service.

:class:`StrategyService` answers *optimization requests* — "find a
deployment strategy for model M on cluster C at batch B" — from one
process, concurrently, with three progressively cheaper paths:

1. **Cache hit** — the request's combined config fingerprint matches a
   :class:`~repro.serve.store.StoredStrategy`; answer without searching.
2. **Warm start** — a stored entry for the same cluster/options is a
   small graph edit away (:mod:`repro.graph.delta`); seed OS-DPOS from
   its split list (:class:`~repro.core.WarmStartSeed`) and let the
   engine's safety valve fall back to cold search if the seed misleads.
3. **Cold search** — the full reentrant pipeline on a fresh
   :class:`~repro.core.SearchContext`.

Identical requests *in flight* are **coalesced**: the second caller
blocks on the first's future instead of spawning a duplicate search.

The service core is synchronous and thread-safe (workers are plain
threads; reentrancy comes from per-request contexts).  The asyncio TCP
front-end lives in :func:`serve_forever` / ``python -m repro.serve``;
in-process callers use :meth:`StrategyService.submit` directly.

Every decision is observable three ways:

* ``serve.*`` events (request/hit/miss/coalesce/warm/complete/timeout,
  each stamped with the client ``request_id``) on the service's bus;
* a :meth:`stats` counter snapshot (the CI smoke gate's source of
  truth), mirrored 1:1 into the service's
  :class:`~repro.obs.MetricsRegistry` as ``serve.<counter>``;
* latency **histograms** (end-to-end request latency labeled by
  outcome, search wall-clock, store lookup time, coalesce wait) in the
  same registry, rendered as Prometheus text exposition by the
  ``metrics`` protocol verb and the plain-HTTP ``GET /metrics`` /
  ``/healthz`` / ``/readyz`` listener (``serve_forever(...,
  metrics_port=)``).

Each request carries a **request id** (client-minted, server-minted as
a fallback) threaded through events, log records
(:func:`repro.obs.log.request_id_context`), the JSONL **access log**
(one line per request: id, fingerprints, outcome, queue/search/total
durations), and — when ``record_runs`` is on — the run manifest, so
``runs show`` answers "which request produced this run" and the access
log answers the reverse.
"""

from __future__ import annotations

import asyncio
import functools
import json
import os
import threading
import time
import uuid
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, replace
from typing import Callable, Dict, IO, Optional, Tuple, Union

from ..cluster import Topology, topology_from
from ..core.calculator import FastTConfig
from ..core.context import SearchContext, WarmStartSeed
from ..core.os_dpos import SearchOptions
from ..graph.delta import graph_signature
from ..obs.events import EventBus
from ..obs.metrics import MetricsRegistry
from ..obs import log as obs_log
from .store import (
    STORE_SCHEMA_VERSION,
    StoredStrategy,
    StrategyStore,
    request_fingerprint,
)

_logger = obs_log.get_logger(__name__)

#: HELP text for the service's exposition families (everything else
#: gets a generated line).
METRIC_HELP = {
    "serve.requests": "Optimization requests received",
    "serve.hits": "Requests answered from the strategy store",
    "serve.misses": "Requests that required a search",
    "serve.coalesced": "Requests folded onto an identical in-flight leader",
    "serve.searches": "Strategy searches executed",
    "serve.warm_starts": "Searches seeded from a cached near-miss strategy",
    "serve.warm_fallbacks": "Warm-started searches that fell back cold",
    "serve.evictions": "Strategy-store evictions",
    "serve.errors": "Requests that failed",
    "serve.timeouts": "Requests that exceeded their deadline",
    "serve.inflight": "Searches currently in flight",
    "serve.request.latency": "End-to-end request latency",
    "serve.search": "Strategy-search wall-clock per request",
    "serve.store.lookup": "Strategy-store lookup time per request",
    "serve.coalesce.wait": "Time followers spent waiting on their leader",
    "serve.queue.wait": "Time requests waited for a worker thread",
}


def new_request_id() -> str:
    """Mint a request id (16 hex chars; client-side minting preferred)."""
    return uuid.uuid4().hex[:16]

#: Fields a request's ``config``/``config.search`` override may set.
#: Everything else in FastTConfig is service policy, not tenant input.
_CONFIG_FIELDS = frozenset(
    f for f in FastTConfig.__dataclass_fields__ if f != "search"
)
_SEARCH_FIELDS = frozenset(SearchOptions.__dataclass_fields__)


class RequestError(ValueError):
    """A malformed or unserviceable optimization request."""


class ServeTimeout(TimeoutError):
    """A request exceeded its deadline while waiting for an answer.

    Raised to *followers* of a coalesced request whose leader has not
    finished within the deadline, so a wedged search hangs one worker
    thread, not every caller piled onto it.  The leader itself cannot be
    interrupted mid-search; the slow-request watchdog
    (:meth:`StrategyService.health`) degrades ``/healthz`` instead.
    """

    def __init__(self, message: str, request_id: str = "") -> None:
        super().__init__(message)
        self.request_id = request_id


class AccessLog:
    """JSONL access log: one line per completed request.

    Each line carries the request id, the request and answer
    fingerprints, the outcome (``hit``/``warm``/``search``/
    ``coalesced``/``timeout``/``error``), and the queue/search/total
    durations — the reverse half of the request<->run correlation
    (``runs show`` prints the forward half from the manifest).

    Writes are line-buffered under a lock, so concurrent worker threads
    interleave whole lines, never fragments.
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            parent = os.path.dirname(target)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self.path: Optional[str] = target
            self._handle: IO[str] = open(target, "a")
            self._owns_handle = True
        else:
            self.path = getattr(target, "name", None)
            self._handle = target
            self._owns_handle = False
        self._lock = threading.Lock()

    def write(self, record: Dict[str, object]) -> None:
        line = json.dumps(record, sort_keys=True, default=repr)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._owns_handle:
                self._handle.close()


def normalize_request(request: Dict[str, object]) -> Dict[str, object]:
    """Canonical JSON document of one request (the coalescing identity).

    Two requests coalesce iff their normalized documents are equal:
    model name, topology (preset string or cluster-spec dict), batch,
    and config overrides, with defaults made explicit where cheap.
    """
    if not isinstance(request, dict):
        raise RequestError(f"request must be an object, got {type(request).__name__}")
    model = request.get("model")
    if not isinstance(model, str) or not model:
        raise RequestError("request needs a model-zoo name under 'model'")
    topology = request.get("topology")
    if isinstance(topology, Topology):
        topology = topology.spec.to_dict()
    if not isinstance(topology, (str, dict)) or not topology:
        raise RequestError(
            "request needs a topology preset string or cluster-spec "
            "dict under 'topology'"
        )
    document: Dict[str, object] = {"model": model, "topology": topology}
    if request.get("global_batch") is not None:
        document["global_batch"] = int(request["global_batch"])  # type: ignore[arg-type]
    config = request.get("config") or {}
    if not isinstance(config, dict):
        raise RequestError("'config' must be an object of FastTConfig overrides")
    overrides: Dict[str, object] = {}
    for key, value in sorted(config.items()):
        if key == "search":
            if not isinstance(value, dict):
                raise RequestError("'config.search' must be an object")
            unknown = set(value) - _SEARCH_FIELDS
            if unknown:
                raise RequestError(
                    f"unknown search option(s): {sorted(unknown)}"
                )
            overrides["search"] = {k: value[k] for k in sorted(value)}
        elif key in _CONFIG_FIELDS:
            overrides[key] = value
        else:
            raise RequestError(f"unknown config option: {key!r}")
    if overrides:
        document["config"] = overrides
    return document


def _build_config(base: FastTConfig, overrides: Dict[str, object]) -> FastTConfig:
    search_overrides = overrides.get("search")
    config = replace(
        base, **{k: v for k, v in overrides.items() if k != "search"}
    )
    if search_overrides:
        config = replace(config, search=replace(config.search, **search_overrides))
    return config


@dataclass
class ServiceStats:
    """Counter snapshot (all monotonic since service start)."""

    requests: int = 0
    hits: int = 0
    misses: int = 0
    coalesced: int = 0
    searches: int = 0
    warm_starts: int = 0
    warm_fallbacks: int = 0
    evictions: int = 0
    errors: int = 0
    timeouts: int = 0

    def to_json(self) -> Dict[str, int]:
        return dict(self.__dict__)


class StrategyService:
    """Thread-safe strategy server over one :class:`StrategyStore`.

    Args:
        store: Answer cache; defaults to a persistent store under the
            run-registry root.
        config: Service-wide :class:`FastTConfig` baseline; per-request
            ``config`` overrides are applied on top.
        workers: Size of the search worker pool used by the async
            front-end (``submit`` itself runs in the caller's thread).
        events: Event bus receiving ``serve.*`` telemetry; a private
            enabled bus is created when omitted so subscribers (stats
            endpoints, tests) can always attach.
        warm_ratio: Structural-edit ceiling for warm-start matching
            (see :meth:`~repro.graph.delta.GraphDelta.is_warm_startable`).
        metrics: Registry receiving the service's counters and latency
            histograms.  A private enabled registry is created when
            omitted; pass :class:`~repro.obs.NullMetricsRegistry` to
            disable recording entirely (the overhead-pin test does).
        request_timeout: Default per-request deadline in seconds (None =
            wait forever).  A request may override it with its own
            ``timeout`` key.  Only followers of a coalesced request can
            be failed fast — see :class:`ServeTimeout`.
        watchdog_deadline: Seconds after which an unfinished in-flight
            search marks the service degraded (:meth:`health`).
            Defaults to ``request_timeout`` (or 300s when that is also
            unset).
        access_log: Path (appended) or open text handle for the JSONL
            access log; None disables it.
        record_runs: Record a run-registry manifest per executed search,
            stamped with the originating ``request_id`` (so ``runs
            show`` answers "which request produced this run").
        runs_root: Registry root for ``record_runs`` (default:
            ``$REPRO_RUNS_DIR`` or ``~/.repro/runs``).
    """

    def __init__(
        self,
        store: Optional[StrategyStore] = None,
        config: Optional[FastTConfig] = None,
        workers: int = 2,
        events: Optional[EventBus] = None,
        warm_ratio: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
        request_timeout: Optional[float] = None,
        watchdog_deadline: Optional[float] = None,
        access_log: Optional[Union[str, IO[str], AccessLog]] = None,
        record_runs: bool = False,
        runs_root: Optional[str] = None,
    ) -> None:
        self.events = events if events is not None else EventBus()
        self.store = store if store is not None else StrategyStore(
            events=self.events
        )
        if self.store.events is not self.events and not self.store.events.enabled:
            self.store.events = self.events
        self.config = config or FastTConfig()
        self.workers = max(1, int(workers))
        self.warm_ratio = warm_ratio
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.request_timeout = request_timeout
        if watchdog_deadline is None:
            watchdog_deadline = (
                request_timeout if request_timeout is not None else 300.0
            )
        self.watchdog_deadline = watchdog_deadline
        if access_log is None or isinstance(access_log, AccessLog):
            self.access_log = access_log
        else:
            self.access_log = AccessLog(access_log)
        self.record_runs = record_runs
        self.runs_root = runs_root
        self.stats = ServiceStats()
        self._stats_lock = threading.Lock()
        self._inflight: Dict[str, Future] = {}
        #: request_key -> monotonic start time of the leader's search;
        #: the slow-request watchdog reads it.
        self._inflight_started: Dict[str, float] = {}
        self._inflight_lock = threading.Lock()
        self._started = False
        self._shutting_down = False
        if self.events.enabled:
            self.events.subscribe(self._on_event)
        # Pre-register every stats counter and the overall latency
        # histogram so a scrape before any traffic still yields the full
        # family set (all zeros) instead of an empty document.
        for field in ServiceStats.__dataclass_fields__:
            self.metrics.counter(f"serve.{field}")
        self.metrics.gauge("serve.inflight")
        self.metrics.histogram("serve.request.latency")

    # -- telemetry ------------------------------------------------------
    def _on_event(self, event) -> None:
        if event.kind == "serve.evict":
            self._bump("evictions")

    def _bump(self, field: str, amount: int = 1) -> None:
        with self._stats_lock:
            setattr(self.stats, field, getattr(self.stats, field) + amount)
        # Mirror 1:1 into the registry so the Prometheus exposition and
        # the stats endpoint can never disagree about counts.
        self.metrics.counter(f"serve.{field}").inc(amount)

    def _observe(self, name: str, seconds: float, **labels: str) -> None:
        self.metrics.histogram(name, **labels).observe(seconds)

    def _access(self, record: Dict[str, object]) -> None:
        if self.access_log is not None:
            try:
                self.access_log.write(record)
            except OSError:  # pragma: no cover - disk-full etc.
                _logger.exception("access-log write failed")

    # -- the three answer paths ----------------------------------------
    def submit(
        self,
        request: Dict[str, object],
        *,
        request_id: Optional[str] = None,
        queued_at: Optional[float] = None,
    ) -> Dict[str, object]:
        """Answer one request (blocking; coalesces with identical peers).

        Returns a JSON-serializable response document with ``source``
        one of ``"cache"``, ``"warm"``, ``"search"`` — or ``"coalesced"``
        wrapping the leader's source.

        ``request_id`` (or a ``request_id`` key in the request dict; the
        client mints one by default) correlates events, log records, the
        access log, and — with ``record_runs`` — the run manifest.  A
        ``timeout`` key (or the service-wide ``request_timeout``) bounds
        how long a *coalesced follower* waits before failing with
        :class:`ServeTimeout`.  ``queued_at`` is a ``time.monotonic()``
        stamp taken when the request was accepted (the async front-end
        passes it so worker-pool queueing shows up in
        ``serve.queue.wait``).  Neither ``request_id`` nor ``timeout``
        participates in the coalescing identity.
        """
        start = time.monotonic()
        raw_timeout: object = None
        if isinstance(request, dict):
            if not request_id and request.get("request_id"):
                request_id = str(request["request_id"])
            raw_timeout = request.get("timeout")
        request_id = request_id or new_request_id()
        if raw_timeout is None:
            timeout = self.request_timeout
        else:
            try:
                timeout = float(raw_timeout)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                raise RequestError(
                    f"'timeout' must be a number, got {raw_timeout!r}"
                )
        queue_seconds = 0.0
        if queued_at is not None:
            queue_seconds = max(0.0, start - queued_at)
            self._observe("serve.queue.wait", queue_seconds)

        document = normalize_request(request)
        request_key = request_fingerprint(document, STORE_SCHEMA_VERSION)
        self._bump("requests")
        outcome = "error"
        answer_key = ""
        run_id = ""
        search_seconds = 0.0
        try:
            with obs_log.request_id_context(request_id):
                future: Future
                leader = False
                with self._inflight_lock:
                    existing = self._inflight.get(request_key)
                    if existing is None:
                        future = Future()
                        self._inflight[request_key] = future
                        self._inflight_started[request_key] = start
                        leader = True
                    else:
                        future = existing
                if not leader:
                    self._bump("coalesced")
                    if self.events.enabled:
                        self.events.emit(
                            "serve.coalesce", request=request_key,
                            request_id=request_id,
                        )
                    wait_start = time.monotonic()
                    try:
                        response = dict(future.result(timeout=timeout))
                    finally:
                        self._observe(
                            "serve.coalesce.wait",
                            time.monotonic() - wait_start,
                        )
                    response["coalesced"] = True
                    response["request_id"] = request_id
                    outcome = "coalesced"
                    answer_key = str(response.get("key", ""))
                    run_id = str(response.get("run_id") or "")
                    return response
                self.metrics.gauge("serve.inflight").inc()
                try:
                    response = self._answer(document, request_key, request_id)
                    future.set_result(response)
                    outcome = str(response.get("source", "search"))
                    answer_key = str(response.get("key", ""))
                    run_id = str(response.get("run_id") or "")
                    search_seconds = float(
                        response.get("search_seconds") or 0.0
                    )
                    return response
                except BaseException as exc:
                    future.set_exception(exc)
                    raise
                finally:
                    self.metrics.gauge("serve.inflight").dec()
                    with self._inflight_lock:
                        self._inflight.pop(request_key, None)
                        self._inflight_started.pop(request_key, None)
        except ServeTimeout:
            outcome = "timeout"
            raise
        except FutureTimeoutError:
            # Follower's wait on the leader expired.  (Ordered after
            # ServeTimeout: on 3.11+ FutureTimeoutError aliases the
            # builtin TimeoutError, which ServeTimeout subclasses.)
            outcome = "timeout"
            self._bump("timeouts")
            if self.events.enabled:
                self.events.emit(
                    "serve.timeout", request=request_key,
                    request_id=request_id, deadline=timeout,
                )
            raise ServeTimeout(
                f"request {request_id} timed out after {timeout:.3f}s "
                f"waiting for in-flight leader {request_key[:12]}",
                request_id=request_id,
            ) from None
        except BaseException:
            self._bump("errors")
            raise
        finally:
            total = time.monotonic() - start
            # Unlabeled overall series first (its _count is the CI
            # cross-check against stats.requests), then per-outcome.
            self._observe("serve.request.latency", total)
            self._observe("serve.request.latency", total, outcome=outcome)
            self._access({
                "ts": time.strftime("%Y-%m-%dT%H:%M:%S"),
                "request_id": request_id,
                "request": request_key,
                "key": answer_key,
                "run_id": run_id,
                "model": str(document.get("model", "")),
                "outcome": outcome,
                "queue_s": round(queue_seconds, 6),
                "search_s": round(search_seconds, 6),
                "total_s": round(total, 6),
            })

    def _answer(
        self,
        document: Dict[str, object],
        request_key: str,
        request_id: str,
    ) -> Dict[str, object]:
        from ..obs.runs import config_fingerprints

        if self.events.enabled:
            self.events.emit(
                "serve.request", request=request_key,
                request_id=request_id, model=document["model"],
            )
        config = _build_config(self.config, document.get("config") or {})
        topology = topology_from(document["topology"])
        # The request's problem identity needs the built input graph;
        # session construction (graph building + placement) is cheap
        # next to search and exactly matches what a cold run would do.
        from ..core.session import FastTSession
        from ..models import get_model

        spec = get_model(str(document["model"]))
        batch = int(document.get("global_batch") or spec.global_batch)
        session = FastTSession(
            spec.builder, topology, global_batch=batch,
            config=config, model_name=spec.name,
        )
        fingerprints = config_fingerprints(session.input_graph, topology, config)
        key = fingerprints["combined"]

        lookup_start = time.monotonic()
        cached = self.store.get(key)
        self._observe(
            "serve.store.lookup", time.monotonic() - lookup_start,
            result="hit" if cached is not None else "miss",
        )
        if cached is not None:
            self._bump("hits")
            if self.events.enabled:
                self.events.emit(
                    "serve.hit", request=request_key, key=key,
                    request_id=request_id,
                )
            return self._respond(
                cached, source="cache", request_key=request_key,
                request_id=request_id,
            )

        self._bump("misses")
        if self.events.enabled:
            self.events.emit(
                "serve.miss", request=request_key, key=key,
                request_id=request_id,
            )

        signature = graph_signature(session.input_graph)
        warm_start, warm_source = self._warm_seed(signature, fingerprints, batch)
        context = session.new_context(warm_start=warm_start)
        self._bump("searches")
        if warm_start is not None:
            self._bump("warm_starts")
            if self.events.enabled:
                self.events.emit(
                    "serve.warm", request=request_key, key=key,
                    request_id=request_id,
                    seed=warm_source, splits=len(warm_start.split_list),
                )
        recorder = None
        if self.record_runs:
            recorder = self._begin_run(request_id)
        search_start = time.monotonic()
        try:
            report = session.optimize(context=context)
        except BaseException as exc:
            self._observe(
                "serve.search", time.monotonic() - search_start,
                seed="warm" if warm_start is not None else "cold",
                result="error",
            )
            if recorder is not None:
                recorder.finish(
                    status="failed",
                    error=f"{type(exc).__name__}: {exc}",
                    model=spec.name, global_batch=batch,
                    devices=len(topology.devices),
                    fingerprints=fingerprints,
                )
            raise
        search_seconds = time.monotonic() - search_start
        self._observe(
            "serve.search", search_seconds,
            seed="warm" if warm_start is not None else "cold",
            result="ok",
        )
        fallbacks = int(report.metrics.get("search.warm_fallbacks", 0))
        if fallbacks:
            self._bump("warm_fallbacks")
        run_id = ""
        if recorder is not None:
            run_id = recorder.run_id
            recorder.finish(
                status="completed",
                model=spec.name,
                global_batch=batch,
                devices=len(topology.devices),
                fingerprints=fingerprints,
                makespan=report.measured_time,
                training_speed=(
                    batch / report.measured_time
                    if report.measured_time else 0.0
                ),
                strategy_label=report.strategy.label,
                splits=len(report.strategy.split_list),
                phases={"search": search_seconds},
            )
        entry = StoredStrategy(
            key=key,
            fingerprints=fingerprints,
            model=spec.name,
            global_batch=batch,
            devices=len(topology.devices),
            strategy=report.strategy,
            makespan=report.measured_time,
            training_speed=(
                batch / report.measured_time if report.measured_time else 0.0
            ),
            signature=signature,
            run_id=run_id or None,
        )
        self.store.put(entry)
        source = "warm" if warm_start is not None and not fallbacks else "search"
        if self.events.enabled:
            self.events.emit(
                "serve.complete", request=request_key, key=key,
                request_id=request_id,
                source=source, makespan=entry.makespan, run_id=run_id,
            )
        return self._respond(
            entry, source=source, request_key=request_key,
            request_id=request_id, search_seconds=search_seconds,
        )

    def _begin_run(self, request_id: str):
        """Mint a run-registry manifest for one executed search.

        The manifest carries the originating ``request_id`` — the
        forward half of the request<->run correlation (``runs show``
        prints it; the access log maps the other direction).
        """
        from ..obs.runs import RunRegistry

        try:
            recorder = RunRegistry(self.runs_root).create()
        except OSError:  # pragma: no cover - registry root unwritable
            _logger.exception("run recording disabled for this request")
            return None
        recorder.manifest.request_id = request_id
        return recorder

    def _warm_seed(
        self,
        signature: Dict[str, str],
        fingerprints: Dict[str, str],
        batch: int,
    ) -> Tuple[Optional[WarmStartSeed], Optional[str]]:
        kwargs = {} if self.warm_ratio is None else {"max_ratio": self.warm_ratio}
        match = self.store.find_similar(
            signature,
            cluster=fingerprints["cluster"],
            options=fingerprints["options"],
            **kwargs,
        )
        if match is None:
            return None, None
        entry, delta = match
        reference = entry.makespan
        if entry.global_batch and batch != entry.global_batch:
            # Linear work-scaling prior keeps the safety valve honest
            # across batch edits (the common warm-start case).
            reference = entry.makespan * (batch / entry.global_batch)
        seed = WarmStartSeed(
            split_list=list(entry.strategy.split_list),
            reference_makespan=reference,
            source=f"store:{entry.key[:12]}",
        )
        _logger.info(
            "warm-start seed %s (%s)", entry.key[:12], delta.summary()
        )
        return seed, entry.key

    def _respond(
        self,
        entry: StoredStrategy,
        *,
        source: str,
        request_key: str,
        request_id: str = "",
        search_seconds: float = 0.0,
    ) -> Dict[str, object]:
        # Inside the caller's request_id_context, so the record is
        # stamped with the request id it answers.
        _logger.info(
            "answered from %s (key %s, makespan %.6fs)",
            source, entry.key[:12], entry.makespan,
        )
        return {
            "status": "ok",
            "source": source,
            "request": request_key,
            "request_id": request_id,
            "run_id": entry.run_id or "",
            "search_seconds": round(search_seconds, 6),
            "key": entry.key,
            "model": entry.model,
            "global_batch": entry.global_batch,
            "devices": entry.devices,
            "makespan": entry.makespan,
            "training_speed": entry.training_speed,
            "strategy": {
                "label": entry.strategy.label,
                "splits": len(entry.strategy.split_list),
                "placement": dict(entry.strategy.placement),
                "order": list(entry.strategy.order),
                "split_list": [
                    [d.op_name, d.dim, d.num_splits]
                    for d in entry.strategy.split_list
                ],
            },
        }

    # -- introspection --------------------------------------------------
    def status(self) -> Dict[str, object]:
        with self._inflight_lock:
            inflight = len(self._inflight)
        return {
            "status": "ok",
            "workers": self.workers,
            "inflight": inflight,
            "store": {
                "root": self.store.root if self.store.persist else None,
                "capacity": self.store.capacity,
                "entries": len(self.store),
            },
        }

    def stats_json(self) -> Dict[str, object]:
        with self._stats_lock:
            return {"status": "ok", "stats": self.stats.to_json()}

    def health(self) -> Dict[str, object]:
        """Liveness document: degraded when the watchdog sees stuck work.

        A request in flight longer than ``watchdog_deadline`` marks the
        service ``degraded`` (an operator signal: a leader search is
        wedged and cannot be interrupted — see :class:`ServeTimeout`).
        Shutting down is reported but still healthy (clean exit).
        """
        now = time.monotonic()
        with self._inflight_lock:
            started = dict(self._inflight_started)
        stuck = {
            key[:12]: round(now - begun, 3)
            for key, begun in started.items()
            if now - begun > self.watchdog_deadline
        }
        healthy = not stuck
        return {
            "status": "ok" if healthy else "degraded",
            "healthy": healthy,
            "inflight": len(started),
            "stuck": stuck,
            "watchdog_deadline": self.watchdog_deadline,
            "shutting_down": self._shutting_down,
        }

    def readiness(self) -> Dict[str, object]:
        """Readiness document: can this process answer a request now?

        Not ready while shutting down, when the worker pool never
        started (async front-end not up — in-process callers set
        nothing, so a bare service is ready), or when the strategy
        store's backing directory has become unusable.
        """
        reasons = []
        if self._shutting_down:
            reasons.append("shutting down")
        store_ok = True
        try:
            entries = len(self.store)
            # A persistent root that does not exist yet is fine (created
            # on first put); one that exists but is unwritable is not.
            if (
                self.store.persist
                and os.path.isdir(self.store.root)
                and not os.access(self.store.root, os.W_OK)
            ):
                store_ok = False
                reasons.append(f"store root not writable: {self.store.root}")
        except Exception as exc:  # pragma: no cover - corrupt store
            store_ok = False
            entries = -1
            reasons.append(f"store unusable: {type(exc).__name__}: {exc}")
        ready = not reasons
        return {
            "status": "ok" if ready else "unavailable",
            "ready": ready,
            "reasons": reasons,
            "store": {"ok": store_ok, "entries": entries},
            "workers": self.workers,
        }

    def metrics_document(self) -> str:
        """The registry rendered as Prometheus text exposition."""
        from ..obs.prometheus import render_prometheus

        return render_prometheus(self.metrics, help=METRIC_HELP)

    def close(self) -> None:
        """Flush and close the access log (idempotent)."""
        if self.access_log is not None:
            self.access_log.close()


# ----------------------------------------------------------------------
# asyncio TCP front-end: one JSON document per line, one back.
# ----------------------------------------------------------------------

#: Grace added to a request's deadline for the event-loop backstop: the
#: follower-side ServeTimeout should fire first; wait_for only catches a
#: wedged *leader* (whose search thread cannot be cancelled).
_BACKSTOP_GRACE = 30.0


async def handle_connection(
    service: StrategyService,
    pool: ThreadPoolExecutor,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    shutdown: asyncio.Event,
) -> None:
    loop = asyncio.get_running_loop()
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            try:
                message = json.loads(line)
                op = message.get("op", "optimize")
                if op == "ping":
                    response: Dict[str, object] = {"status": "ok", "pong": True}
                elif op == "stats":
                    response = service.stats_json()
                elif op == "status":
                    response = service.status()
                elif op == "health":
                    response = service.health()
                elif op == "ready":
                    response = service.readiness()
                elif op == "metrics":
                    response = {
                        "status": "ok",
                        "exposition": service.metrics_document(),
                    }
                elif op == "shutdown":
                    response = {"status": "ok", "stopping": True}
                    service._shutting_down = True
                    shutdown.set()
                elif op == "optimize":
                    request = message.get("request") or {}
                    call = functools.partial(
                        service.submit, request,
                        queued_at=time.monotonic(),
                    )
                    deadline = None
                    raw = request.get("timeout") if isinstance(
                        request, dict
                    ) else None
                    if raw is not None:
                        try:
                            deadline = float(raw)
                        except (TypeError, ValueError):
                            deadline = None
                    elif service.request_timeout is not None:
                        deadline = service.request_timeout
                    task = loop.run_in_executor(pool, call)
                    if deadline is None:
                        response = await task
                    else:
                        # Backstop for a wedged leader: the worker thread
                        # keeps running (it cannot be cancelled), but the
                        # connection gets its error instead of hanging.
                        response = await asyncio.wait_for(
                            asyncio.shield(task),
                            timeout=deadline + _BACKSTOP_GRACE,
                        )
                else:
                    response = {"status": "error",
                                "error": f"unknown op {op!r}"}
            except RequestError as exc:
                response = {"status": "error", "error": str(exc)}
            except ServeTimeout as exc:
                response = {
                    "status": "error", "error": str(exc),
                    "timeout": True,
                    "request_id": exc.request_id,
                }
            except asyncio.TimeoutError:
                response = {
                    "status": "error", "timeout": True,
                    "error": "request deadline exceeded "
                             "(leader search still running)",
                }
            except Exception as exc:  # pragma: no cover - defensive
                _logger.exception("request failed")
                response = {"status": "error",
                            "error": f"{type(exc).__name__}: {exc}"}
            writer.write(json.dumps(response).encode() + b"\n")
            await writer.drain()
            if shutdown.is_set():
                break
    finally:
        writer.close()


# ----------------------------------------------------------------------
# Plain-HTTP observability listener: GET /metrics, /healthz, /readyz.
# ----------------------------------------------------------------------

async def _handle_http_scrape(
    service: StrategyService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Answer one HTTP/1.0-style scrape and close (curl/Prometheus-grade).

    Deliberately minimal — request line + headers in, one response out —
    so the service stays dependency-free.  Anything but a GET for a
    known path gets a 404/405.
    """
    from ..obs.prometheus import CONTENT_TYPE

    try:
        request_line = await reader.readline()
        try:
            method, path, _ = request_line.decode("latin-1").split(None, 2)
        except ValueError:
            writer.close()
            return
        # Drain headers (ignored) until the blank line.
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
        path = path.split("?", 1)[0]
        if method.upper() != "GET":
            status, content_type, body = (
                "405 Method Not Allowed", "text/plain", "GET only\n"
            )
        elif path == "/metrics":
            status = "200 OK"
            content_type = CONTENT_TYPE
            body = service.metrics_document()
        elif path == "/healthz":
            health = service.health()
            status = "200 OK" if health["healthy"] else "503 Service Unavailable"
            content_type = "application/json"
            body = json.dumps(health) + "\n"
        elif path == "/readyz":
            readiness = service.readiness()
            status = "200 OK" if readiness["ready"] else "503 Service Unavailable"
            content_type = "application/json"
            body = json.dumps(readiness) + "\n"
        else:
            status, content_type, body = (
                "404 Not Found", "text/plain",
                "try /metrics, /healthz, or /readyz\n",
            )
        payload = body.encode()
        writer.write(
            (
                f"HTTP/1.0 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            ).encode("latin-1") + payload
        )
        await writer.drain()
    except (ConnectionError, asyncio.IncompleteReadError):
        pass  # scraper went away mid-request; nothing to answer
    finally:
        writer.close()


async def serve_metrics_http(
    service: StrategyService,
    host: str = "127.0.0.1",
    port: int = 0,
    ready: Optional[Callable[[str, int], None]] = None,
) -> "asyncio.AbstractServer":
    """Bind the GET /metrics + /healthz + /readyz listener; returns it."""
    server = await asyncio.start_server(
        lambda r, w: _handle_http_scrape(service, r, w), host, port,
    )
    bound = server.sockets[0].getsockname()
    _logger.info("metrics on http://%s:%s/metrics", bound[0], bound[1])
    if ready is not None:
        ready(bound[0], bound[1])
    return server


async def serve_forever(
    service: StrategyService,
    host: str = "127.0.0.1",
    port: int = 0,
    ready: Optional[Callable[[str, int], None]] = None,
    metrics_port: Optional[int] = None,
    metrics_ready: Optional[Callable[[str, int], None]] = None,
) -> None:
    """Run the TCP front-end until a client sends ``{"op": "shutdown"}``.

    ``ready(host, port)`` is invoked once the socket is bound (port 0
    picks a free port; this is how callers learn which).
    ``metrics_port`` additionally binds the plain-HTTP observability
    listener (``GET /metrics`` Prometheus exposition, ``/healthz``,
    ``/readyz``) on the same host; ``metrics_ready`` learns its port.
    """
    shutdown = asyncio.Event()
    pool = ThreadPoolExecutor(
        max_workers=service.workers, thread_name_prefix="repro-serve"
    )
    service._started = True
    server = await asyncio.start_server(
        lambda r, w: handle_connection(service, pool, r, w, shutdown),
        host, port,
    )
    metrics_server = None
    if metrics_port is not None:
        metrics_server = await serve_metrics_http(
            service, host, metrics_port, ready=metrics_ready
        )
    bound = server.sockets[0].getsockname()
    _logger.info("serving on %s:%s", bound[0], bound[1])
    if ready is not None:
        ready(bound[0], bound[1])
    try:
        async with server:
            await shutdown.wait()
    finally:
        if metrics_server is not None:
            metrics_server.close()
            await metrics_server.wait_closed()
        pool.shutdown(wait=False)
        service.close()
