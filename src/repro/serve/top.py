"""``python -m repro.serve top`` — live dashboard over a running service.

Polls the service's ``stats`` and ``metrics`` endpoints every
``interval`` seconds and repaints a compact TTY panel in place (via
:class:`repro.obs.progress.LivePanel`):

* request rate (delta between polls) and lifetime totals;
* hit / warm-start / coalesce ratios;
* p50 / p95 / p99 end-to-end latency, read straight out of the
  service's Prometheus exposition (the ``serve.request.latency``
  histogram's cumulative buckets);
* in-flight searches, evictions, timeouts, errors, health.

Pure consumer: everything rendered here is computed from the two public
endpoints, so the dashboard exercises exactly what an external scraper
would see.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Tuple

from ..obs.progress import LivePanel, format_seconds
from .client import Client, ServiceError

_LatencySamples = Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]

#: Exposition family holding the overall (unlabeled) latency histogram.
LATENCY_FAMILY = "repro_serve_request_latency_seconds"


def quantile_from_samples(
    samples: _LatencySamples,
    q: float,
    family: str = LATENCY_FAMILY,
    **labels: str,
) -> Optional[float]:
    """Estimate a quantile from a scraped histogram's ``_bucket`` series.

    Standard Prometheus ``histogram_quantile`` math: find the first
    cumulative bucket covering rank ``q * count``, interpolate linearly
    inside it.  Returns None when the family is absent or empty.
    """
    wanted = tuple(sorted(labels.items()))
    points: List[Tuple[float, float]] = []
    for (name, sample_labels), value in samples.items():
        if name != f"{family}_bucket":
            continue
        rest = tuple(sorted(p for p in sample_labels if p[0] != "le"))
        if rest != wanted:
            continue
        le = dict(sample_labels)["le"]
        bound = math.inf if le == "+Inf" else float(le)
        points.append((bound, value))
    if not points:
        return None
    points.sort()
    total = points[-1][1]
    if total <= 0:
        return None
    rank = max(0.0, min(1.0, q)) * total
    previous_bound, previous_cumulative = 0.0, 0.0
    for bound, cumulative in points:
        if cumulative >= rank:
            if bound == math.inf:
                return previous_bound
            in_bucket = cumulative - previous_cumulative
            if in_bucket <= 0:
                return bound
            fraction = (rank - previous_cumulative) / in_bucket
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound, previous_cumulative = bound, cumulative
    return previous_bound


def _ratio(part: float, whole: float) -> str:
    if whole <= 0:
        return "  -  "
    return f"{100.0 * part / whole:4.1f}%"


def render_frame(
    stats: Dict[str, int],
    samples: _LatencySamples,
    health: Dict[str, object],
    status: Dict[str, object],
    rate: Optional[float],
) -> str:
    """One dashboard frame as a multi-line string (unit-testable)."""
    requests = stats.get("requests", 0)
    quantiles = [
        quantile_from_samples(samples, q) for q in (0.50, 0.95, 0.99)
    ]
    p50, p95, p99 = (
        format_seconds(v) if v is not None else "-" for v in quantiles
    )
    store = status.get("store") or {}
    health_word = str(health.get("status", "?"))
    stuck = health.get("stuck") or {}
    lines = [
        "repro.serve top — "
        + time.strftime("%H:%M:%S")
        + (f"  [{health_word.upper()}]" if health_word != "ok" else ""),
        f"requests  {requests:>8}   rate "
        + (f"{rate:6.2f}/s" if rate is not None else "     -  ")
        + f"   inflight {health.get('inflight', stats.get('inflight', 0))}",
        f"hit       {_ratio(stats.get('hits', 0), requests)}"
        f"   warm {_ratio(stats.get('warm_starts', 0), stats.get('searches', 0))}"
        f"   coalesced {_ratio(stats.get('coalesced', 0), requests)}",
        f"latency   p50 {p50:>8}   p95 {p95:>8}   p99 {p99:>8}",
        f"searches  {stats.get('searches', 0):>8}"
        f"   evictions {stats.get('evictions', 0)}"
        f"   timeouts {stats.get('timeouts', 0)}"
        f"   errors {stats.get('errors', 0)}",
        f"store     {store.get('entries', '?')}/{store.get('capacity', '?')}"
        f" entries   workers {status.get('workers', '?')}",
    ]
    if stuck:
        lines.append(f"stuck     {stuck}")
    return "\n".join(lines)


def run_top(
    host: str = "127.0.0.1",
    port: int = 7421,
    interval: float = 2.0,
    once: bool = False,
    max_frames: Optional[int] = None,
    stream: Optional[object] = None,
) -> int:
    """Poll + repaint until interrupted (or ``once`` / ``max_frames``)."""
    from ..obs.prometheus import parse_prometheus

    panel = LivePanel(stream=stream)
    previous: Optional[Tuple[float, int]] = None
    frames = 0
    try:
        with Client(host, port) as client:
            while True:
                now = time.monotonic()
                stats = dict(client.stats().get("stats") or {})
                samples = parse_prometheus(client.metrics())
                health = client.health()
                status = client.status()
                rate = None
                requests = int(stats.get("requests", 0))
                if previous is not None and now > previous[0]:
                    rate = (requests - previous[1]) / (now - previous[0])
                previous = (now, requests)
                panel.paint(
                    render_frame(stats, samples, health, status, rate)
                )
                frames += 1
                if once or (max_frames is not None and frames >= max_frames):
                    return 0
                time.sleep(max(0.1, interval))
    except KeyboardInterrupt:
        return 0
    except (ConnectionError, ServiceError, OSError) as exc:
        print(f"error: {exc}")
        return 1
    finally:
        panel.close()
